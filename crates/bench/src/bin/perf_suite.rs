//! End-to-end throughput suite: the perf trajectory anchor for the repo.
//!
//! Unlike the `figN_*` binaries (which reproduce individual paper plots),
//! this suite measures **host wall-clock throughput** of the full engine —
//! the quantity successive PRs are judged against — plus the deterministic
//! simulated-cycle total CI gates on. It sweeps preset datasets × query
//! classes × three batch workloads:
//!
//! * `insert` — batched edge insertions (positive kernel only),
//! * `delete` — batched edge deletions (negative kernel only),
//! * `churn`  — alternating delete/re-insert rounds over the same edge
//!   set, the steady-state workload that exercises both kernel phases,
//!   the GPMA delete *and* insert paths, and the re-encoding pipeline
//!   every round.
//!
//! Engines: the full GAMMA engine, the WBM ablation, and the multi-device
//! [`ShardedEngine`] at 1/2/4 shards on the churn workload — the scaling
//! curve the JSON summary records.
//!
//! For every (dataset, class, workload, engine) cell it prints updates/sec
//! (net structural updates over host wall time), matches/sec, and the
//! simulated device-cycle total, then writes a machine-readable JSON
//! summary (default `BENCH_PR10.json`; `--smoke` defaults to a
//! per-invocation file under the system temp dir so parallel CI jobs never
//! clobber each other — `--out=PATH` is honored everywhere).
//!
//! The summary's `registry` block measures the standing-query serving
//! tier: 8 same-class subscriptions served by one [`QueryRegistry`]
//! against the same subscriptions on dedicated engines, over the same
//! churn stream. Under `--check` (non-replay) the same-run ratio must
//! hold [`REGISTRY_SPEEDUP_FLOOR`]. The block is omitted under
//! `--replay-trace`, whose recorded traces predate the serving tier.
//!
//! The summary also carries an `intersect` micro-benchmark block: ns/probe
//! of the three backward-edge membership primitives (scalar galloping,
//! chunked merge, signature-prefiltered chunked) measured on real preset
//! runs — the quantity the PR-6 kernel rework targets. It runs in `--smoke`
//! too, so CI validates the block's presence and sanity.
//!
//! ```text
//! cargo run --release -p gamma-bench --bin perf_suite             # full
//! cargo run --release -p gamma-bench --bin perf_suite -- --smoke  # CI
//! ```
//!
//! ## Fixed traces
//!
//! `--record-trace=FILE` serializes the whole generated sweep — suite
//! parameters, data graphs, per-class queries, every update batch — into
//! a checksummed [`gamma_wal::Trace`]. `--replay-trace=FILE` runs the
//! suite on exactly that recorded work: the trace's parameters are
//! adopted, and a parameter passed explicitly on the command line that
//! *conflicts* with the trace is refused with exit code 2 (the same
//! convention as the baseline parameter check). Replayed work is
//! bit-identical across hosts, so the `sim_cycles` column becomes a
//! drift-immune regression signal: single-device cells replay within the
//! 10% algorithmic-drift tolerance, and multi-shard cells replay to the
//! **exact** cycle count at 0% tolerance — the sharded engine's
//! virtual-time executor makes every scheduling decision (and therefore
//! every cycle of accounting) a pure function of the replayed work.
//!
//! ## CI perf-regression gate
//!
//! `--baseline=BENCH_PR7.json --check` compares the run against a
//! previously committed summary: for every `churn` cell present in both
//! files (matched on dataset/class/workload/engine, with identical suite
//! parameters), a drop of more than 30% in updates/sec fails the process
//! with a non-zero exit — the trajectory must not silently regress.
//! Violated wall-clock cells are re-measured up to twice (best-of-3)
//! before failing: host noise only ever slows a cell down, so a retry
//! clearing the floor proves health while a genuine regression fails
//! every attempt. Every violation message names the offending cell's
//! baseline vs measured sim-cycles — the hardware-independent companion
//! signal for triage.
//!
//! Under `--replay-trace` the gate additionally checks the deterministic
//! column: any cell whose `sim_cycles` grew more than 10% over the
//! baseline fails immediately, with no re-measure (determinism means a
//! retry cannot differ).
//! `--baseline-churn=<updates/sec>` still embeds a scalar pre-PR number
//! into the JSON for the speedup field.
//!
//! ## Shard-scaling gate
//!
//! Under `--check`, every dense-class churn cell measured in *this run*
//! must show SHARD4 holding at least [`SHARD_VS_WBM_FLOOR`] of the
//! single-device WBM wall-clock throughput — the multi-device runtime
//! must pay for itself on the workloads it targets, same-run so host
//! speed cancels out of the ratio. Sharded cells also carry migration
//! telemetry in the JSON (migrant batches shipped, per-(src,dst) migrant
//! counts, inbox high-water depth, and the partitioner's edge-cut
//! fraction) — the observability for tuning the greedy partitioner.

use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;

use gamma_bench::{fmt_secs, print_header, print_row, GammaVariant};
use gamma_core::{
    GammaEngine, PartitionStrategy, QueryConfig, QueryRegistry, ShardStealing, ShardedConfig,
    ShardedEngine,
};
use gamma_datasets::{
    generate_queries, sample_deletion_workload, split_insertion_workload, DatasetPreset, QueryClass,
};
use gamma_graph::{DynamicGraph, QueryGraph, Update};
use gamma_wal::{PresetTrace, Trace, TraceParams, WorkloadTrace};

/// The regression gate's tolerated throughput drop (fraction of baseline).
const REGRESSION_TOLERANCE: f64 = 0.30;

/// The deterministic gate's tolerated sim-cycle growth under a trace
/// replay (fraction of baseline). Much tighter than the wall-clock gate:
/// replayed work is bit-identical, so past the multi-shard scheduler
/// jitter (sub-percent) any growth is a real code change.
const SIM_CYCLE_TOLERANCE: f64 = 0.10;

/// The sharded cells' replayed sim-cycles are *exactly* reproducible —
/// the virtual-time executor has no scheduler jitter — so their replay
/// tolerance is zero: a single cycle of drift is a real code change.
const SHARD_SIM_CYCLE_TOLERANCE: f64 = 0.0;

/// Same-run floor for the SHARD4 / WBM churn throughput ratio on dense
/// query classes (slightly under 1.0 to absorb wall-clock measurement
/// noise; the committed summaries show the ratio above parity).
const SHARD_VS_WBM_FLOOR: f64 = 0.95;

/// Migration telemetry of one sharded cell (absent on single-device
/// cells).
#[derive(Clone, Debug)]
struct ShardTelemetry {
    /// Partial embeddings shipped toward another shard.
    migrations: u64,
    /// Sealed migrant batches published into destination queues.
    migrant_batches: u64,
    /// Migrants executed by a non-owner shard via batch stealing.
    shard_steals: u64,
    /// Peak published-but-undrained migrant depth at any destination.
    inbox_high_water: u64,
    /// Fraction of the start graph's edges cut by the partitioner.
    edge_cut: f64,
    /// Migrants shipped per (src, dst) pair, `src * num_shards + dst`.
    pair_migrants: Vec<u64>,
    /// Runtime faults applied from the configured fault plan (0 on
    /// non-chaos runs; asserted present by the CI smoke gate).
    faults_injected: u64,
    /// Shard fail-stops that triggered partition repair.
    failovers: u64,
    /// Pending units reassigned to survivors by failovers.
    requeued_units: u64,
}

/// One measured cell of the suite.
#[derive(Clone, Debug)]
struct Sample {
    dataset: &'static str,
    class: &'static str,
    workload: &'static str,
    engine: &'static str,
    /// Net structural updates applied across all batches.
    updates: u64,
    /// Incremental matches reported (positive + negative).
    matches: u64,
    /// Host wall-clock seconds across all `apply_batch` calls.
    wall_seconds: f64,
    /// Simulated device cycles (GPMA update + kernels).
    sim_cycles: u64,
    /// Batches applied.
    batches: u64,
    /// Sharded cells' migration telemetry.
    shard: Option<ShardTelemetry>,
}

impl Sample {
    fn updates_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.updates as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    fn matches_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.matches as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

struct SuiteParams {
    smoke: bool,
    scale: f64,
    query_size: usize,
    rounds: usize,
    batch_rate: f64,
    seed: u64,
    out: String,
    baseline_churn: Option<f64>,
    baseline_path: Option<String>,
    check: bool,
    /// `--dataset=GH` / `--class=Dense`: restrict the sweep to one
    /// dataset and/or query class (regression triage).
    only_dataset: Option<String>,
    only_class: Option<String>,
    /// `--record-trace=FILE`: serialize the generated sweep to a trace.
    record_trace: Option<String>,
    /// `--replay-trace=FILE`: run the suite on a recorded trace.
    replay_trace: Option<String>,
    /// Keys the user passed explicitly (`--k=v`): a replayed trace may
    /// only override parameters the user did *not* pin.
    explicit: HashSet<String>,
}

impl SuiteParams {
    fn from_args() -> Self {
        let mut map: HashMap<String, String> = HashMap::new();
        let mut smoke = false;
        let mut check = false;
        for arg in std::env::args().skip(1) {
            if arg == "--smoke" {
                smoke = true;
            } else if arg == "--check" {
                check = true;
            } else if let Some(rest) = arg.strip_prefix("--") {
                if let Some((k, v)) = rest.split_once('=') {
                    map.insert(k.to_string(), v.to_string());
                }
            }
        }
        let default_out = if smoke {
            // Per-invocation path: parallel CI jobs must not clobber each
            // other through a shared fixed file.
            std::env::temp_dir()
                .join(format!("perf_suite_{}.json", std::process::id()))
                .to_string_lossy()
                .into_owned()
        } else {
            "BENCH_PR10.json".to_string()
        };
        let mut p = Self {
            smoke,
            scale: if smoke { 0.05 } else { 0.35 },
            query_size: 6,
            rounds: if smoke { 2 } else { 6 },
            batch_rate: 0.04,
            seed: 42,
            out: default_out,
            baseline_churn: None,
            baseline_path: None,
            check,
            only_dataset: None,
            only_class: None,
            record_trace: None,
            replay_trace: None,
            explicit: map.keys().cloned().collect(),
        };
        if let Some(v) = map.get("scale") {
            p.scale = v.parse().expect("--scale");
        }
        if let Some(v) = map.get("size") {
            p.query_size = v.parse().expect("--size");
        }
        if let Some(v) = map.get("rounds") {
            p.rounds = v.parse().expect("--rounds");
        }
        if let Some(v) = map.get("rate") {
            p.batch_rate = v.parse().expect("--rate");
        }
        if let Some(v) = map.get("seed") {
            p.seed = v.parse().expect("--seed");
        }
        if let Some(v) = map.get("out") {
            p.out = v.clone();
        }
        if let Some(v) = map.get("baseline-churn") {
            p.baseline_churn = Some(v.parse().expect("--baseline-churn"));
        }
        if let Some(v) = map.get("baseline") {
            p.baseline_path = Some(v.clone());
        }
        if let Some(v) = map.get("dataset") {
            p.only_dataset = Some(v.clone());
        }
        if let Some(v) = map.get("class") {
            p.only_class = Some(v.clone());
        }
        if let Some(v) = map.get("record-trace") {
            p.record_trace = Some(v.clone());
        }
        if let Some(v) = map.get("replay-trace") {
            p.replay_trace = Some(v.clone());
        }
        p
    }
}

/// Loads `--replay-trace` and adopts its recorded parameters, refusing
/// (with a message for exit code 2) any explicitly-passed parameter that
/// conflicts with the trace — replaying different work than the trace
/// records would silently compare apples to oranges.
fn load_replay_trace(p: &mut SuiteParams) -> Result<Option<Trace>, String> {
    let Some(path) = p.replay_trace.clone() else {
        return Ok(None);
    };
    if p.record_trace.is_some() {
        return Err("--record-trace and --replay-trace are mutually exclusive".into());
    }
    let (trace, crc) = Trace::read(Path::new(&path))
        .map_err(|e| format!("replay trace {path} unreadable: {e}"))?;
    let tp = trace.params.expect("read trace always carries params");
    let pinned: [(&str, f64, f64); 5] = [
        ("scale", p.scale, tp.scale),
        ("size", p.query_size as f64, tp.query_size as f64),
        ("rounds", p.rounds as f64, tp.rounds as f64),
        ("rate", p.batch_rate, tp.batch_rate),
        ("seed", p.seed as f64, tp.seed as f64),
    ];
    for (key, mine, theirs) in pinned {
        if p.explicit.contains(key) && (mine - theirs).abs() > 1e-9 {
            return Err(format!(
                "--{key}={mine} conflicts with replay trace {path} \
                 (recorded with {key}={theirs}) — drop the flag or re-record"
            ));
        }
    }
    if p.smoke && !tp.smoke {
        return Err(format!(
            "--smoke conflicts with replay trace {path} (recorded without smoke)"
        ));
    }
    p.scale = tp.scale;
    p.query_size = tp.query_size as usize;
    p.rounds = tp.rounds as usize;
    p.batch_rate = tp.batch_rate;
    p.seed = tp.seed;
    p.smoke = tp.smoke;
    println!("replaying trace {path} (crc 0x{crc:08x})");
    Ok(Some(trace))
}

/// Interns a recorded workload name back to the suite's static labels.
fn static_workload(name: &str) -> &'static str {
    match name {
        "churn" => "churn",
        "insert" => "insert",
        "delete" => "delete",
        other => panic!("trace contains unknown workload {other:?}"),
    }
}

/// Reconstructs one (preset, class) sweep instance from a recorded trace:
/// the exact recorded query and `(workload, start graph, batches)`
/// triples, bit-identical to the run that recorded them.
#[allow(clippy::type_complexity)]
fn workloads_from_trace(
    trace: &Trace,
    preset: DatasetPreset,
    class: QueryClass,
) -> Option<(
    QueryGraph,
    Vec<(&'static str, DynamicGraph, Vec<Vec<Update>>)>,
)> {
    let pt = trace.preset(preset.name())?;
    let q = pt.query(class.name())?.clone();
    let workloads = pt
        .workloads
        .iter()
        .map(|wl| {
            let g0 = wl.start.clone().unwrap_or_else(|| pt.graph.clone());
            (static_workload(&wl.name), g0, wl.batches.clone())
        })
        .collect();
    Some((q, workloads))
}

/// An engine under measurement: the single-device variants plus the
/// sharded engine's scaling column.
#[derive(Clone, Copy, Debug)]
enum EngineUnderTest {
    Gamma(GammaVariant),
    Sharded(usize),
}

/// Applies `batches` to a fresh engine, accumulating throughput numbers.
fn run_engine(
    g0: &DynamicGraph,
    q: &QueryGraph,
    batches: &[Vec<Update>],
    under_test: EngineUnderTest,
    names: (&'static str, &'static str, &'static str, &'static str),
) -> Sample {
    let mut s = Sample {
        dataset: names.0,
        class: names.1,
        workload: names.2,
        engine: names.3,
        updates: 0,
        matches: 0,
        wall_seconds: 0.0,
        sim_cycles: 0,
        batches: 0,
        shard: None,
    };
    let account = |s: &mut Sample, wall: f64, r: gamma_core::BatchResult| {
        s.wall_seconds += wall;
        s.updates += r.stats.net_updates as u64;
        s.matches += r.positive_count + r.negative_count;
        s.sim_cycles += r.stats.update_cycles + r.stats.kernel.device_cycles;
        s.batches += 1;
    };
    match under_test {
        EngineUnderTest::Gamma(variant) => {
            let mut cfg = variant.config(120.0);
            cfg.collect_matches = false;
            let mut engine = GammaEngine::new(g0.clone(), q, cfg);
            for batch in batches {
                let t0 = Instant::now();
                let r = engine.apply_batch(batch);
                account(&mut s, t0.elapsed().as_secs_f64(), r);
            }
        }
        EngineUnderTest::Sharded(shards) => {
            let mut base = GammaVariant::FULL.config(120.0);
            base.collect_matches = false;
            // The locality-aware partitioner is the production default for
            // the scaling column: its edge-cut (reported per cell) is what
            // keeps the replication factor — and the host work — down.
            let cfg = ShardedConfig {
                base,
                num_shards: shards,
                strategy: PartitionStrategy::Greedy,
                stealing: ShardStealing::Active,
                faults: None,
                query_id: 0,
            };
            let mut engine = ShardedEngine::new(g0.clone(), q, cfg);
            let edge_cut = engine.partition().cut_fraction(g0);
            for batch in batches {
                let t0 = Instant::now();
                let r = engine.apply_batch(batch);
                account(&mut s, t0.elapsed().as_secs_f64(), r);
            }
            let st = engine.shard_stats();
            s.shard = Some(ShardTelemetry {
                migrations: st.migrations,
                migrant_batches: st.migrant_batches,
                shard_steals: st.shard_steals,
                inbox_high_water: st.inbox_high_water,
                edge_cut,
                pair_migrants: st.pair_migrants,
                faults_injected: st.faults_injected,
                failovers: st.failovers,
                requeued_units: st.requeued_units,
            });
        }
    }
    s
}

/// Splits `updates` into `n` roughly equal consecutive batches.
fn chunk(updates: Vec<Update>, n: usize) -> Vec<Vec<Update>> {
    let n = n.max(1);
    let per = updates.len().div_ceil(n).max(1);
    updates.chunks(per).map(|c| c.to_vec()).collect()
}

/// Builds the workloads for one (preset, class) instance. Returns the
/// query plus `(workload name, pre-batch start graph, batches)` triples —
/// the insert workload starts from the stripped graph, churn and delete
/// from the full one.
#[allow(clippy::type_complexity)]
fn build_workloads(
    preset: DatasetPreset,
    class: QueryClass,
    p: &SuiteParams,
) -> Option<(
    QueryGraph,
    Vec<(&'static str, DynamicGraph, Vec<Vec<Update>>)>,
)> {
    let d = preset.build(p.scale, p.seed);
    let queries = generate_queries(&d.graph, class, p.query_size, 1, p.seed ^ 0xbeef);
    let q = queries.into_iter().next()?;

    // Churn workload: alternately delete and re-insert the same edge set,
    // `rounds` times — the steady-state regime.
    let churn_set = sample_deletion_workload(&d.graph, p.batch_rate, p.seed ^ 0x3);
    let churn_inserts: Vec<Update> = {
        let mut v = Vec::with_capacity(churn_set.len());
        for up in &churn_set {
            let label = d.graph.edge_label(up.u, up.v).unwrap_or(0);
            v.push(Update::insert_labeled(up.u, up.v, label));
        }
        v
    };
    let mut churn_batches = Vec::with_capacity(2 * p.rounds);
    for _ in 0..p.rounds {
        churn_batches.push(churn_set.clone());
        churn_batches.push(churn_inserts.clone());
    }

    let mut out = vec![("churn", d.graph.clone(), churn_batches)];
    if !p.smoke {
        // Insert workload: split real edges out (stripping `g_ins`), then
        // re-insert them in batches starting from the stripped graph.
        let mut g_ins = d.graph.clone();
        let ins = split_insertion_workload(&mut g_ins, p.batch_rate, p.seed ^ 0x1);
        out.push(("insert", g_ins, chunk(ins, p.rounds)));

        // Delete workload: remove live edges in batches.
        let del = sample_deletion_workload(&d.graph, p.batch_rate, p.seed ^ 0x2);
        out.push(("delete", d.graph, chunk(del, p.rounds)));
    }
    Some((q, out))
}

// ---------------------------------------------------------------------------
// Standing-query serving-tier benchmark
// ---------------------------------------------------------------------------

/// Same-run floor for the registry-vs-independent churn throughput ratio:
/// 8 same-class subscriptions served by one [`QueryRegistry`] (shared
/// structural update, shared encoders, shared-prefix grouped launches)
/// must beat 8 sequential dedicated engines by at least this factor.
const REGISTRY_SPEEDUP_FLOOR: f64 = 1.3;

/// One standing-query subscription's totals, for the JSON summary.
struct RegistryPerQuery {
    id: u64,
    batches: u64,
    positive: u64,
    negative: u64,
}

/// The serving-tier cell: one registry holding `queries` subscriptions vs
/// the same subscriptions served by dedicated engines, same churn stream.
struct RegistryBench {
    dataset: &'static str,
    class: &'static str,
    queries: usize,
    group_count: usize,
    distinct_patterns: usize,
    /// Net structural updates of the (shared) stream.
    stream_updates: u64,
    /// Registry wall-clock across all `apply_batch` calls.
    reg_wall: f64,
    /// Summed wall-clock of the dedicated engines over the same stream.
    indep_wall: f64,
    per_query: Vec<RegistryPerQuery>,
}

impl RegistryBench {
    fn reg_updates_per_sec(&self) -> f64 {
        if self.reg_wall > 0.0 {
            self.stream_updates as f64 / self.reg_wall
        } else {
            0.0
        }
    }

    fn indep_updates_per_sec(&self) -> f64 {
        if self.indep_wall > 0.0 {
            self.stream_updates as f64 / self.indep_wall
        } else {
            0.0
        }
    }

    fn speedup(&self) -> f64 {
        if self.reg_wall > 0.0 {
            self.indep_wall / self.reg_wall
        } else {
            0.0
        }
    }
}

/// Runs the serving-tier cell on the GH preset's steady-state churn
/// workload: 8 same-class subscriptions cycling a couple of distinct
/// patterns (duplicates land in shared-prefix groups — the serving tier's
/// whole point), measured against 8 sequential dedicated engines.
fn bench_registry(p: &SuiteParams) -> Option<RegistryBench> {
    const SUBS: usize = 8;
    let preset = DatasetPreset::GH;
    // Dense first (the acceptance cell); fall back so smoke always emits
    // the JSON section even on hostile scales.
    for class in [QueryClass::Dense, QueryClass::Sparse, QueryClass::Tree] {
        let (_, workloads) = match build_workloads(preset, class, p) {
            Some(x) => x,
            None => continue,
        };
        let (_, g0, batches) = workloads
            .into_iter()
            .find(|(w, _, _)| *w == "churn")
            .expect("churn workload always present");
        let qs = generate_queries(&g0, class, p.query_size.min(5), 2, p.seed ^ 0x517e);
        if qs.is_empty() {
            continue;
        }
        let subs: Vec<&QueryGraph> = (0..SUBS).map(|i| &qs[i % qs.len()]).collect();

        let mut cfg = GammaVariant::FULL.config(120.0);
        cfg.collect_matches = false;

        let mut reg = QueryRegistry::new(g0.clone(), cfg.clone());
        let ids: Vec<_> = subs
            .iter()
            .map(|q| reg.register(q, QueryConfig::default()))
            .collect();
        let mut stream_updates = 0u64;
        let mut reg_wall = 0.0;
        for batch in &batches {
            let t0 = Instant::now();
            let r = reg.apply_batch(batch);
            reg_wall += t0.elapsed().as_secs_f64();
            stream_updates += r.net_updates as u64;
        }

        let mut indep_wall = 0.0;
        for q in &subs {
            let mut engine = GammaEngine::new(g0.clone(), q, cfg.clone());
            for batch in &batches {
                let t0 = Instant::now();
                engine.apply_batch(batch);
                indep_wall += t0.elapsed().as_secs_f64();
            }
        }

        let per_query = ids
            .iter()
            .map(|&id| {
                let st = reg.stats(id).expect("registered id has stats");
                RegistryPerQuery {
                    id: id.0,
                    batches: st.batches,
                    positive: st.positive_total,
                    negative: st.negative_total,
                }
            })
            .collect();
        return Some(RegistryBench {
            dataset: preset.name(),
            class: class.name(),
            queries: SUBS,
            group_count: reg.group_count(),
            distinct_patterns: qs.len(),
            stream_updates,
            reg_wall,
            indep_wall,
            per_query,
        });
    }
    None
}

// ---------------------------------------------------------------------------
// Backward-edge intersection micro-benchmark
// ---------------------------------------------------------------------------

/// ns/probe of the three backward-edge membership primitives, measured on
/// real preset runs (the WBM backward-check shape: for each edge `(u, v)`,
/// `v`'s sorted neighbor run probed for membership in `u`'s run).
struct IntersectBench {
    probes: u64,
    scalar_ns: f64,
    chunked_ns: f64,
    bitmap_ns: f64,
}

fn bench_intersect(p: &SuiteParams) -> IntersectBench {
    use gamma_gpma::{Gpma, GpmaConfig, CHUNK_WIDTH};
    use gamma_graph::ELabel;

    let scale = if p.smoke { 0.05 } else { 0.25 };
    let d = DatasetPreset::GH.build(scale, p.seed ^ 0x6);
    let pma = Gpma::from_graph(&d.graph, GpmaConfig::default());

    // Probe pairs with real degree/overlap distributions: one pair per
    // vertex `u` with neighbors, probing `u`'s run with the sorted run of
    // its highest-degree neighbor.
    let mut pairs: Vec<(u32, Vec<u32>)> = Vec::new();
    let mut total_targets = 0u64;
    for u in 0..d.graph.num_vertices() as u32 {
        let Some(&(v, _)) = d
            .graph
            .neighbors(u)
            .iter()
            .max_by_key(|&&(w, _)| d.graph.degree(w))
        else {
            continue;
        };
        let targets: Vec<u32> = pma.neighbor_run(v).map(|(w, _)| w).collect();
        if targets.is_empty() {
            continue;
        }
        total_targets += targets.len() as u64;
        pairs.push((u, targets));
    }
    // Fixed probe volume so smoke stays fast and full runs measure stably.
    let goal: u64 = if p.smoke { 200_000 } else { 2_000_000 };
    let rounds = (goal / total_targets.max(1)).max(1);
    let probes = total_targets * rounds;

    let mut labels = [0 as ELabel; CHUNK_WIDTH];
    let per_probe = |t0: Instant, hits: u64| -> f64 {
        std::hint::black_box(hits);
        t0.elapsed().as_nanos() as f64 / probes as f64
    };

    // Scalar galloping: one `run_seek` per target.
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..rounds {
        for (u, targets) in &pairs {
            let mut cur = pma.run_cursor(*u);
            for &t in targets {
                hits += pma.run_seek(&mut cur, t).is_some() as u64;
            }
        }
    }
    let scalar_ns = per_probe(t0, hits);

    // Chunked merge: 64-wide `run_seek_chunk` over the same targets.
    let t0 = Instant::now();
    let mut hits = 0u64;
    for _ in 0..rounds {
        for (u, targets) in &pairs {
            let mut cur = pma.run_cursor(*u);
            for chunk in targets.chunks(CHUNK_WIDTH) {
                hits += u64::from(
                    pma.run_seek_chunk(&mut cur, chunk, &mut labels)
                        .count_ones(),
                );
            }
        }
    }
    let chunked_ns = per_probe(t0, hits);

    // Signature-prefiltered chunked: build the u64 signature (charged
    // inside the timing, as the kernel pays it), reject lanes whose bit is
    // clear, seek only survivors.
    let t0 = Instant::now();
    let mut hits = 0u64;
    let mut buf = [0u32; CHUNK_WIDTH];
    for _ in 0..rounds {
        for (u, targets) in &pairs {
            let sig = pma.run_signature(*u);
            let mut cur = pma.run_cursor(*u);
            for chunk in targets.chunks(CHUNK_WIDTH) {
                let mut nt = 0usize;
                for &t in chunk {
                    if sig & (1u64 << (t & 63)) != 0 {
                        buf[nt] = t;
                        nt += 1;
                    }
                }
                if nt > 0 {
                    hits += u64::from(
                        pma.run_seek_chunk(&mut cur, &buf[..nt], &mut labels)
                            .count_ones(),
                    );
                }
            }
        }
    }
    let bitmap_ns = per_probe(t0, hits);

    IntersectBench {
        probes,
        scalar_ns,
        chunked_ns,
        bitmap_ns,
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_json(
    path: &str,
    samples: &[Sample],
    isect: &IntersectBench,
    registry: Option<&RegistryBench>,
    p: &SuiteParams,
    trace_info: Option<(&str, u32)>,
) -> std::io::Result<()> {
    let mut j = String::new();
    j.push_str("{\n");
    let _ = writeln!(j, "  \"suite\": \"perf_suite\",");
    let _ = writeln!(j, "  \"pr\": 10,");
    match trace_info {
        Some((tpath, crc)) => {
            let _ = writeln!(j, "  \"trace\": \"{}\",", json_escape(tpath));
            let _ = writeln!(j, "  \"trace_crc\": {crc},");
        }
        None => {
            let _ = writeln!(j, "  \"trace\": null,");
            let _ = writeln!(j, "  \"trace_crc\": null,");
        }
    }
    let _ = writeln!(j, "  \"smoke\": {},", p.smoke);
    let _ = writeln!(j, "  \"scale\": {},", p.scale);
    let _ = writeln!(j, "  \"query_size\": {},", p.query_size);
    let _ = writeln!(j, "  \"rounds\": {},", p.rounds);
    let _ = writeln!(j, "  \"batch_rate\": {},", p.batch_rate);
    let _ = writeln!(j, "  \"seed\": {},", p.seed);

    // Aggregate churn throughput for the full engine (the headline number).
    let churn: Vec<&Sample> = samples
        .iter()
        .filter(|s| s.workload == "churn" && s.engine == "GAMMA")
        .collect();
    let churn_updates: u64 = churn.iter().map(|s| s.updates).sum();
    let churn_wall: f64 = churn.iter().map(|s| s.wall_seconds).sum();
    let churn_matches: u64 = churn.iter().map(|s| s.matches).sum();
    let churn_ups = if churn_wall > 0.0 {
        churn_updates as f64 / churn_wall
    } else {
        0.0
    };
    let churn_mps = if churn_wall > 0.0 {
        churn_matches as f64 / churn_wall
    } else {
        0.0
    };
    j.push_str("  \"churn\": {\n");
    let _ = writeln!(j, "    \"updates_per_sec\": {churn_ups:.1},");
    let _ = writeln!(j, "    \"matches_per_sec\": {churn_mps:.1},");
    let _ = writeln!(j, "    \"wall_seconds\": {churn_wall:.4},");
    match p.baseline_churn {
        Some(b) => {
            let _ = writeln!(j, "    \"pre_pr_updates_per_sec\": {b:.1},");
            let speedup = if b > 0.0 { churn_ups / b } else { 0.0 };
            let _ = writeln!(j, "    \"speedup_vs_pre_pr\": {speedup:.2}");
        }
        None => {
            let _ = writeln!(j, "    \"pre_pr_updates_per_sec\": null,");
            let _ = writeln!(j, "    \"speedup_vs_pre_pr\": null");
        }
    }
    j.push_str("  },\n");

    // Backward-edge membership primitives (ns/probe, lower is better).
    j.push_str("  \"intersect\": {\n");
    let _ = writeln!(j, "    \"probes\": {},", isect.probes);
    let _ = writeln!(j, "    \"scalar_ns_per_probe\": {:.2},", isect.scalar_ns);
    let _ = writeln!(j, "    \"chunked_ns_per_probe\": {:.2},", isect.chunked_ns);
    let _ = writeln!(j, "    \"bitmap_ns_per_probe\": {:.2}", isect.bitmap_ns);
    j.push_str("  },\n");

    // The standing-query serving tier: one registry vs dedicated engines
    // (absent under `--replay-trace` — replayed runs reproduce the
    // recorded engine matrix only).
    match registry {
        Some(r) => {
            j.push_str("  \"registry\": {\n");
            let _ = writeln!(j, "    \"dataset\": \"{}\",", json_escape(r.dataset));
            let _ = writeln!(j, "    \"class\": \"{}\",", json_escape(r.class));
            let _ = writeln!(j, "    \"queries\": {},", r.queries);
            let _ = writeln!(j, "    \"group_count\": {},", r.group_count);
            let _ = writeln!(j, "    \"distinct_patterns\": {},", r.distinct_patterns);
            let _ = writeln!(j, "    \"stream_updates\": {},", r.stream_updates);
            let _ = writeln!(j, "    \"wall_seconds\": {:.6},", r.reg_wall);
            let _ = writeln!(
                j,
                "    \"updates_per_sec\": {:.1},",
                r.reg_updates_per_sec()
            );
            let _ = writeln!(j, "    \"indep_wall_seconds\": {:.6},", r.indep_wall);
            let _ = writeln!(
                j,
                "    \"indep_updates_per_sec\": {:.1},",
                r.indep_updates_per_sec()
            );
            let _ = writeln!(j, "    \"speedup_vs_independent\": {:.2},", r.speedup());
            j.push_str("    \"per_query\": [\n");
            for (i, q) in r.per_query.iter().enumerate() {
                let comma = if i + 1 < r.per_query.len() { "," } else { "" };
                let _ = writeln!(
                    j,
                    "      {{\"id\": {}, \"batches\": {}, \"positive\": {}, \"negative\": {}}}{}",
                    q.id, q.batches, q.positive, q.negative, comma
                );
            }
            j.push_str("    ]\n");
            j.push_str("  },\n");
        }
        None => {
            let _ = writeln!(j, "  \"registry\": null,");
        }
    }

    j.push_str("  \"cells\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        // Migration telemetry rides on the sharded cells' lines.
        let shard_fields = match &s.shard {
            Some(t) => {
                let pairs = t
                    .pair_migrants
                    .iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                format!(
                    ", \"migrations\": {}, \"migrant_batches\": {}, \"shard_steals\": {}, \
                     \"inbox_high_water\": {}, \"edge_cut\": {:.4}, \"pair_migrants\": [{}], \
                     \"faults_injected\": {}, \"failovers\": {}, \"requeued_units\": {}",
                    t.migrations,
                    t.migrant_batches,
                    t.shard_steals,
                    t.inbox_high_water,
                    t.edge_cut,
                    pairs,
                    t.faults_injected,
                    t.failovers,
                    t.requeued_units
                )
            }
            None => String::new(),
        };
        let _ = writeln!(
            j,
            "    {{\"dataset\": \"{}\", \"class\": \"{}\", \"workload\": \"{}\", \"engine\": \"{}\", \
             \"updates\": {}, \"matches\": {}, \"batches\": {}, \"wall_seconds\": {:.6}, \
             \"updates_per_sec\": {:.1}, \"matches_per_sec\": {:.1}, \"sim_cycles\": {}{}}}{}",
            json_escape(s.dataset),
            json_escape(s.class),
            json_escape(s.workload),
            json_escape(s.engine),
            s.updates,
            s.matches,
            s.batches,
            s.wall_seconds,
            s.updates_per_sec(),
            s.matches_per_sec(),
            s.sim_cycles,
            shard_fields,
            comma
        );
    }
    j.push_str("  ]\n}\n");
    std::fs::write(path, j)
}

// ---------------------------------------------------------------------------
// Baseline parsing + the regression gate
// ---------------------------------------------------------------------------

/// A baseline cell parsed back out of a committed summary.
#[derive(Debug)]
struct BaselineCell {
    dataset: String,
    class: String,
    workload: String,
    engine: String,
    updates_per_sec: f64,
    /// Absent in pre-PR-4 summaries (the column postdates them).
    sim_cycles: Option<f64>,
}

/// Extracts `"key": "value"` from one JSON line of our own writer.
fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\": \"");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// Extracts `"key": <number>` from one JSON line of our own writer.
fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let end = line[start..]
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
        .map(|e| e + start)
        .unwrap_or(line.len());
    line[start..end].parse().ok()
}

/// Parses a committed `perf_suite` summary (the line-oriented format this
/// binary writes — one cell object per line).
fn parse_baseline(text: &str) -> (HashMap<String, f64>, Vec<BaselineCell>) {
    let mut params = HashMap::new();
    let mut cells = Vec::new();
    let mut in_cells = false;
    for line in text.lines() {
        if line.contains("\"cells\"") {
            in_cells = true;
        }
        if in_cells && line.trim_start().starts_with('{') && line.contains("\"dataset\"") {
            if let (Some(dataset), Some(class), Some(workload), Some(engine), Some(ups)) = (
                field_str(line, "dataset"),
                field_str(line, "class"),
                field_str(line, "workload"),
                field_str(line, "engine"),
                field_num(line, "updates_per_sec"),
            ) {
                cells.push(BaselineCell {
                    dataset,
                    class,
                    workload,
                    engine,
                    updates_per_sec: ups,
                    sim_cycles: field_num(line, "sim_cycles"),
                });
            }
        } else if !in_cells {
            for key in ["scale", "query_size", "rounds", "batch_rate", "seed"] {
                if line.trim_start().starts_with(&format!("\"{key}\"")) {
                    if let Some(v) = field_num(line, key) {
                        params.insert(key.to_string(), v);
                    }
                }
            }
        }
    }
    (params, cells)
}

/// One gate violation: the offending sample, the message, and whether it
/// came from the deterministic sim-cycle column (never re-measured — a
/// retry of deterministic work cannot differ).
struct Violation {
    idx: usize,
    msg: String,
    deterministic: bool,
}

/// Formats a cell's baseline-vs-measured sim-cycles for a violation
/// message — the hardware-independent triage signal every violation must
/// carry (pre-PR-4 baselines lack the column).
fn sim_cycle_note(b: &BaselineCell, s: &Sample) -> String {
    match b.sim_cycles {
        Some(bs) => format!("; sim-cycles baseline {bs:.0} vs measured {}", s.sim_cycles),
        None => format!(
            "; sim-cycles measured {} (baseline lacks column)",
            s.sim_cycles
        ),
    }
}

/// The perf-regression gate: every `churn` cell shared with the baseline
/// must hold at least `1 - REGRESSION_TOLERANCE` of its throughput, and —
/// when `sim_gate` is on (trace replay: the work is bit-identical) —
/// every shared cell's deterministic `sim_cycles` must stay within
/// `1 + SIM_CYCLE_TOLERANCE` of the baseline.
fn check_regressions(
    samples: &[Sample],
    baseline: &[BaselineCell],
    sim_gate: bool,
) -> Vec<Violation> {
    let mut violations = Vec::new();
    for b in baseline {
        let Some((i, s)) = samples.iter().enumerate().find(|(_, s)| {
            s.dataset == b.dataset
                && s.class == b.class
                && s.workload == b.workload
                && s.engine == b.engine
        }) else {
            continue; // cell no longer measured (engine removed / renamed)
        };
        if b.workload == "churn" {
            let floor = b.updates_per_sec * (1.0 - REGRESSION_TOLERANCE);
            if s.updates_per_sec() < floor {
                violations.push(Violation {
                    idx: i,
                    msg: format!(
                        "{}/{}/{}/{}: {:.0} upd/s < floor {:.0} (baseline {:.0}, -{:.0}%){}",
                        b.dataset,
                        b.class,
                        b.workload,
                        b.engine,
                        s.updates_per_sec(),
                        floor,
                        b.updates_per_sec,
                        (1.0 - s.updates_per_sec() / b.updates_per_sec) * 100.0,
                        sim_cycle_note(b, s)
                    ),
                    deterministic: false,
                });
            }
        }
        if sim_gate {
            if let Some(bs) = b.sim_cycles.filter(|&bs| bs > 0.0) {
                // Sharded cells replay bit-exactly (virtual-time executor);
                // single-device cells keep the algorithmic-drift headroom.
                let tol = if b.engine.starts_with("SHARD") {
                    SHARD_SIM_CYCLE_TOLERANCE
                } else {
                    SIM_CYCLE_TOLERANCE
                };
                let ceiling = bs * (1.0 + tol);
                if s.sim_cycles as f64 > ceiling {
                    violations.push(Violation {
                        idx: i,
                        msg: format!(
                            "{}/{}/{}/{}: sim-cycles measured {} > ceiling {:.0} \
                             (baseline {:.0}, +{:.1}%)",
                            b.dataset,
                            b.class,
                            b.workload,
                            b.engine,
                            s.sim_cycles,
                            ceiling,
                            bs,
                            (s.sim_cycles as f64 / bs - 1.0) * 100.0
                        ),
                        deterministic: true,
                    });
                }
            }
        }
    }
    violations
}

/// One dense-class churn comparison of the same-run SHARD4 and WBM cells:
/// `(shard4 sample index, ratio, message)` — ratio below
/// [`SHARD_VS_WBM_FLOOR`] is a gate violation.
fn shard_scaling_ratios(samples: &[Sample]) -> Vec<(usize, f64, String)> {
    let mut out = Vec::new();
    for (i, s4) in samples.iter().enumerate() {
        if s4.engine != "SHARD4" || s4.workload != "churn" || s4.class != "Dense" {
            continue;
        }
        let Some(wbm) = samples.iter().find(|w| {
            w.engine == "WBM"
                && w.workload == "churn"
                && w.dataset == s4.dataset
                && w.class == s4.class
        }) else {
            continue;
        };
        let ratio = if wbm.updates_per_sec() > 0.0 {
            s4.updates_per_sec() / wbm.updates_per_sec()
        } else {
            0.0
        };
        out.push((
            i,
            ratio,
            format!(
                "{}/{}: SHARD4 {:.0} upd/s vs WBM {:.0} — ratio {ratio:.2}",
                s4.dataset,
                s4.class,
                s4.updates_per_sec(),
                wbm.updates_per_sec()
            ),
        ));
    }
    out
}

/// Re-measures one sample's cell from scratch and keeps the better of the
/// two measurements. Wall-clock throughput is one-sided under host noise —
/// interference can only make a healthy cell look slow, never a regressed
/// cell look fast — so best-of-N retries reject noise without masking real
/// regressions.
fn remeasure(sample: &Sample, p: &SuiteParams, trace: Option<&Trace>) -> Option<Sample> {
    let preset = [DatasetPreset::GH, DatasetPreset::AZ, DatasetPreset::NF]
        .into_iter()
        .find(|d| d.name() == sample.dataset)?;
    let class = QueryClass::ALL
        .iter()
        .copied()
        .find(|c| c.name() == sample.class)?;
    let under_test = match sample.engine {
        "GAMMA" => EngineUnderTest::Gamma(GammaVariant::FULL),
        "WBM" => EngineUnderTest::Gamma(GammaVariant::WBM),
        "SHARD1" => EngineUnderTest::Sharded(1),
        "SHARD2" => EngineUnderTest::Sharded(2),
        "SHARD4" => EngineUnderTest::Sharded(4),
        _ => return None,
    };
    // A replayed run must re-measure the *recorded* work, not regenerate.
    let (q, workloads) = match trace {
        Some(t) => workloads_from_trace(t, preset, class)?,
        None => build_workloads(preset, class, p)?,
    };
    let (wname, g0, batches) = workloads
        .into_iter()
        .find(|(w, _, _)| *w == sample.workload)?;
    Some(run_engine(
        &g0,
        &q,
        &batches,
        under_test,
        (sample.dataset, sample.class, wname, sample.engine),
    ))
}

fn main() -> ExitCode {
    let mut p = SuiteParams::from_args();
    let replay = match load_replay_trace(&mut p) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("perf_suite: {msg}");
            return ExitCode::from(2);
        }
    };
    let mut presets: Vec<DatasetPreset> = if p.smoke {
        vec![DatasetPreset::GH]
    } else {
        vec![DatasetPreset::GH, DatasetPreset::AZ, DatasetPreset::NF]
    };
    let mut classes: Vec<QueryClass> = if p.smoke {
        vec![QueryClass::Tree]
    } else {
        QueryClass::ALL.to_vec()
    };
    if let Some(d) = &p.only_dataset {
        presets.retain(|x| x.name() == d);
        assert!(!presets.is_empty(), "unknown --dataset={d}");
    }
    if let Some(c) = &p.only_class {
        classes.retain(|x| x.name() == c);
        assert!(!classes.is_empty(), "unknown --class={c}");
    }
    if let Some(t) = &replay {
        // Only the recorded slices of the matrix can be replayed.
        presets.retain(|d| t.preset(d.name()).is_some());
        classes.retain(|c| t.presets.iter().any(|pt| pt.query(c.name()).is_some()));
        if presets.is_empty() || classes.is_empty() {
            eprintln!("perf_suite: replay trace covers none of the requested cells");
            return ExitCode::from(2);
        }
    }

    println!(
        "# perf_suite (scale={}, size={}, rounds={}, rate={:.0}%{}{})\n",
        p.scale,
        p.query_size,
        p.rounds,
        p.batch_rate * 100.0,
        if p.smoke { ", smoke" } else { "" },
        if replay.is_some() { ", replay" } else { "" }
    );
    print_header(&[
        "dataset",
        "class",
        "workload",
        "engine",
        "updates",
        "matches",
        "upd/s",
        "match/s",
        "wall",
        "sim-cycles",
        "migr",
        "cut%",
    ]);

    // `--record-trace`: accumulate the generated sweep as it is built —
    // workloads once per preset (class-independent), queries per class.
    let mut recorder: Option<Trace> = p.record_trace.as_ref().map(|_| Trace {
        params: Some(TraceParams {
            scale: p.scale,
            query_size: p.query_size as u32,
            rounds: p.rounds as u32,
            batch_rate: p.batch_rate,
            seed: p.seed,
            smoke: p.smoke,
        }),
        presets: Vec::new(),
    });

    let mut samples: Vec<Sample> = Vec::new();
    for &preset in &presets {
        for &class in &classes {
            let built = match &replay {
                Some(t) => workloads_from_trace(t, preset, class),
                None => build_workloads(preset, class, &p),
            };
            let Some((q, workloads)) = built else {
                continue;
            };
            if let Some(t) = recorder.as_mut() {
                if t.preset(preset.name()).is_none() {
                    // The churn workload starts from the preset's full
                    // graph, so its start graph doubles as the preset
                    // payload; only insert needs a start override (the
                    // stripped graph).
                    let graph = workloads
                        .iter()
                        .find(|(w, _, _)| *w == "churn")
                        .map(|(_, g, _)| g.clone())
                        .expect("churn workload always present");
                    t.presets.push(PresetTrace {
                        name: preset.name().to_string(),
                        graph,
                        queries: Vec::new(),
                        workloads: workloads
                            .iter()
                            .map(|(w, g0, batches)| WorkloadTrace {
                                name: (*w).to_string(),
                                start: (*w == "insert").then(|| g0.clone()),
                                batches: batches.clone(),
                            })
                            .collect(),
                    });
                }
                let pt = t
                    .presets
                    .iter_mut()
                    .find(|x| x.name == preset.name())
                    .expect("preset entry just ensured");
                pt.queries.push((class.name().to_string(), q.clone()));
            }
            for (wname, g0, batches) in &workloads {
                // The sharded scaling column runs on the steady-state
                // churn workload; insert/delete keep the two single-device
                // variants (bounded suite runtime). Smoke keeps one
                // single-device and one sharded cell so CI can assert the
                // migration-telemetry plumbing end to end.
                let mut engines: Vec<(&'static str, EngineUnderTest)> =
                    vec![("GAMMA", EngineUnderTest::Gamma(GammaVariant::FULL))];
                if p.smoke {
                    engines.push(("SHARD4", EngineUnderTest::Sharded(4)));
                } else {
                    engines.push(("WBM", EngineUnderTest::Gamma(GammaVariant::WBM)));
                    if *wname == "churn" {
                        engines.push(("SHARD1", EngineUnderTest::Sharded(1)));
                        engines.push(("SHARD2", EngineUnderTest::Sharded(2)));
                        engines.push(("SHARD4", EngineUnderTest::Sharded(4)));
                    }
                }
                for &(ename, under_test) in &engines {
                    let s = run_engine(
                        g0,
                        &q,
                        batches,
                        under_test,
                        (preset.name(), class.name(), wname, ename),
                    );
                    let (migr, cut) = match &s.shard {
                        Some(t) => (
                            format!("{}/{}b", t.migrations, t.migrant_batches),
                            format!("{:.1}", t.edge_cut * 100.0),
                        ),
                        None => ("-".to_string(), "-".to_string()),
                    };
                    print_row(&[
                        s.dataset.to_string(),
                        s.class.to_string(),
                        s.workload.to_string(),
                        s.engine.to_string(),
                        s.updates.to_string(),
                        s.matches.to_string(),
                        format!("{:.0}", s.updates_per_sec()),
                        format!("{:.0}", s.matches_per_sec()),
                        fmt_secs(s.wall_seconds),
                        s.sim_cycles.to_string(),
                        migr,
                        cut,
                    ]);
                    samples.push(s);
                }
            }
        }
    }

    let isect = bench_intersect(&p);
    println!(
        "\n# intersect micro ({} probes): scalar {:.1} ns/probe, chunked {:.1}, bitmap {:.1}",
        isect.probes, isect.scalar_ns, isect.chunked_ns, isect.bitmap_ns
    );

    // Serving-tier cell: skipped under replay (the recorded traces predate
    // the registry, and the replay gate compares the engine matrix only).
    let registry = if replay.is_some() {
        None
    } else {
        bench_registry(&p)
    };
    if let Some(r) = &registry {
        println!(
            "# registry ({}/{}): {} queries in {} groups — {:.0} upd/s vs {:.0} upd/s \
             dedicated ({}x speedup, floor {REGISTRY_SPEEDUP_FLOOR})",
            r.dataset,
            r.class,
            r.queries,
            r.group_count,
            r.reg_updates_per_sec(),
            r.indep_updates_per_sec(),
            format_args!("{:.2}", r.speedup()),
        );
    }

    // Trace provenance in the JSON: the file just recorded, or the one
    // being replayed (re-reading for its crc keeps one code path).
    let mut trace_info: Option<(String, u32)> = None;
    if let Some(t) = &recorder {
        let path = p.record_trace.clone().expect("recorder implies path");
        let crc = t.write(Path::new(&path)).expect("write trace");
        println!("recorded trace {path} (crc 0x{crc:08x})");
        trace_info = Some((path, crc));
    } else if let Some(path) = &p.replay_trace {
        let (_, crc) = Trace::read(Path::new(path)).expect("trace re-read");
        trace_info = Some((path.clone(), crc));
    }
    let trace_ref = trace_info.as_ref().map(|(f, c)| (f.as_str(), *c));

    write_json(&p.out, &samples, &isect, registry.as_ref(), &p, trace_ref)
        .expect("write JSON summary");
    println!("\nwrote {}", p.out);

    if p.check && p.baseline_path.is_none() {
        eprintln!("perf gate: --check requires --baseline=FILE (nothing to compare against)");
        return ExitCode::from(2);
    }
    if let Some(path) = &p.baseline_path {
        let text =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read baseline {path}: {e}"));
        let (params, cells) = parse_baseline(&text);
        let baseline_churn_cells = cells.iter().filter(|c| c.workload == "churn").count();
        if p.check && baseline_churn_cells == 0 {
            eprintln!(
                "perf gate: baseline {path} contains no parseable churn cells — \
                 the gate would pass vacuously, refusing"
            );
            return ExitCode::from(2);
        }
        // Refuse apples-to-oranges comparisons: the baseline must have
        // been recorded under the same suite parameters.
        let ours: [(&str, f64); 5] = [
            ("scale", p.scale),
            ("query_size", p.query_size as f64),
            ("rounds", p.rounds as f64),
            ("batch_rate", p.batch_rate),
            ("seed", p.seed as f64),
        ];
        for (key, mine) in ours {
            // A missing key must refuse too (NaN compares false with
            // everything, so `unwrap_or(NAN)` would silently pass).
            let Some(theirs) = params.get(key).copied() else {
                eprintln!(
                    "perf gate: baseline {path} does not record \"{key}\" — \
                     unparseable or pre-gate format, refusing to compare"
                );
                return ExitCode::from(2);
            };
            if (theirs - mine).abs() > 1e-9 {
                eprintln!(
                    "perf gate: baseline {path} was recorded with {key}={theirs}, \
                     this run uses {key}={mine} — refusing to compare"
                );
                return ExitCode::from(2);
            }
        }
        let sim_gate = replay.is_some();
        let mut violations = check_regressions(&samples, &cells, sim_gate);
        // Best-of-3: re-measure violated wall-clock cells before failing.
        // Host noise is one-sided (it only slows cells down), so a retry
        // that clears the floor proves the cell healthy, while a real
        // regression stays below it on every attempt. Deterministic
        // sim-cycle violations are never retried — identical work yields
        // identical cycles, so a retry cannot differ.
        for attempt in 1..=2 {
            let noisy: Vec<usize> = violations
                .iter()
                .filter(|v| !v.deterministic)
                .map(|v| v.idx)
                .collect();
            if !p.check || noisy.is_empty() {
                break;
            }
            eprintln!(
                "perf gate: {} wall-clock violation(s), re-measuring (attempt {attempt}/2) \
                 to reject host noise",
                noisy.len()
            );
            for &i in &noisy {
                if let Some(fresh) = remeasure(&samples[i], &p, replay.as_ref()) {
                    if fresh.updates_per_sec() > samples[i].updates_per_sec() {
                        samples[i] = fresh;
                    }
                }
            }
            violations = check_regressions(&samples, &cells, sim_gate);
            // Keep the JSON summary consistent with the retained (best)
            // measurements.
            write_json(&p.out, &samples, &isect, registry.as_ref(), &p, trace_ref)
                .expect("rewrite JSON summary");
        }
        if p.check && !violations.is_empty() {
            eprintln!(
                "\nperf gate FAILED vs {path} (>{:.0}% churn wall-clock regression{}):",
                REGRESSION_TOLERANCE * 100.0,
                if sim_gate {
                    format!(" or >{:.0}% sim-cycle growth", SIM_CYCLE_TOLERANCE * 100.0)
                } else {
                    String::new()
                }
            );
            for v in &violations {
                eprintln!("  {}", v.msg);
            }
            return ExitCode::FAILURE;
        }
        println!(
            "perf gate vs {path}: {} churn cell(s) compared{}, {}",
            baseline_churn_cells,
            if sim_gate {
                format!(
                    " + sim-cycles on {} cell(s)",
                    cells.iter().filter(|c| c.sim_cycles.is_some()).count()
                )
            } else {
                String::new()
            },
            if violations.is_empty() {
                "no regressions".to_string()
            } else {
                format!(
                    "{} regression(s) (informational, no --check)",
                    violations.len()
                )
            }
        );
    }

    // Same-run shard-scaling column: on dense classes, SHARD4 must hold
    // SHARD_VS_WBM_FLOOR of the single-device WBM churn throughput. The
    // two cells ran on the same host minutes apart, so machine speed
    // cancels out of the ratio — unlike the baseline gate, this one
    // cannot be fooled by running CI on a faster box.
    let mut scaling = shard_scaling_ratios(&samples);
    if !scaling.is_empty() {
        println!("\n# shard scaling (SHARD4 vs WBM churn, floor {SHARD_VS_WBM_FLOOR}):");
        for (_, _, msg) in &scaling {
            println!("  {msg}");
        }
        if p.check {
            // Best-of-3 on the SHARD4 side only: host noise slows cells
            // one-sidedly, and a slowed WBM only *raises* the ratio.
            for attempt in 1..=2 {
                let failing: Vec<usize> = scaling
                    .iter()
                    .filter(|(_, r, _)| *r < SHARD_VS_WBM_FLOOR)
                    .map(|(i, _, _)| *i)
                    .collect();
                if failing.is_empty() {
                    break;
                }
                eprintln!(
                    "shard gate: {} ratio violation(s), re-measuring SHARD4 \
                     (attempt {attempt}/2) to reject host noise",
                    failing.len()
                );
                for &i in &failing {
                    if let Some(fresh) = remeasure(&samples[i], &p, replay.as_ref()) {
                        if fresh.updates_per_sec() > samples[i].updates_per_sec() {
                            samples[i] = fresh;
                        }
                    }
                }
                scaling = shard_scaling_ratios(&samples);
                write_json(&p.out, &samples, &isect, registry.as_ref(), &p, trace_ref)
                    .expect("rewrite JSON summary");
            }
            let failing: Vec<&(usize, f64, String)> = scaling
                .iter()
                .filter(|(_, r, _)| *r < SHARD_VS_WBM_FLOOR)
                .collect();
            if !failing.is_empty() {
                eprintln!("\nshard gate FAILED (SHARD4/WBM churn ratio < {SHARD_VS_WBM_FLOOR}):");
                for (_, _, msg) in failing {
                    eprintln!("  {msg}");
                }
                return ExitCode::FAILURE;
            }
            println!(
                "shard gate: {} dense cell(s), all ratios >= {SHARD_VS_WBM_FLOOR}",
                scaling.len()
            );
        }
    }

    // Serving-tier gate: same-run ratio (host speed cancels), so no
    // baseline needed. The registry amortizes the structural update, the
    // re-encoding pipeline and shared-prefix DFS levels across its
    // subscriptions — if it cannot beat dedicated engines by the floor,
    // the sharing machinery has regressed.
    if p.check {
        if let Some(r) = &registry {
            if r.speedup() < REGISTRY_SPEEDUP_FLOOR {
                eprintln!(
                    "\nregistry gate FAILED: {} queries in {} groups, {:.2}x vs dedicated \
                     engines (floor {REGISTRY_SPEEDUP_FLOOR})",
                    r.queries,
                    r.group_count,
                    r.speedup()
                );
                return ExitCode::FAILURE;
            }
            println!(
                "registry gate: {:.2}x vs dedicated engines, floor {REGISTRY_SPEEDUP_FLOOR}",
                r.speedup()
            );
        }
    }
    ExitCode::SUCCESS
}
