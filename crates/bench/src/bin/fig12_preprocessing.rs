//! Figure 12: preprocessing analysis — simulated graph-update (GPMA) time
//! per dataset at a 10% update rate, and its share of total running time.
//!
//! `cargo run --release -p gamma-bench --bin fig12_preprocessing`

use gamma_bench::{build_instance, print_header, print_row, BenchParams, GammaVariant};
use gamma_core::GammaEngine;
use gamma_datasets::{DatasetPreset, QueryClass};

fn main() {
    let params = BenchParams::from_args();
    println!(
        "# Figure 12 — preprocessing analysis (scale={}, Ir={:.0}%, |V(Q)|={}, Sparse queries)\n",
        params.scale,
        params.insert_rate * 100.0,
        params.query_size
    );
    print_header(&[
        "DS",
        "|E|",
        "batch size",
        "update time (sim ms)",
        "kernel time (sim ms)",
        "update ratio",
        "dirty vertices",
        "host preprocess (ms)",
    ]);

    for preset in DatasetPreset::ALL {
        let inst = build_instance(preset, QueryClass::Sparse, &params);
        let Some(q) = inst.queries.first() else {
            continue;
        };
        let cfg = GammaVariant::FULL.config(params.timeout * 4.0);
        let clock = cfg.device.clock_ghz;
        let mut engine = GammaEngine::new(inst.graph.clone(), q, cfg);
        let r = engine.apply_batch(&inst.batch);
        let update_ms = r.stats.update_cycles as f64 / (clock * 1e9) * 1e3;
        let kernel_ms = r.stats.kernel.device_cycles as f64 / (clock * 1e9) * 1e3;
        let ratio = 100.0 * update_ms / (update_ms + kernel_ms).max(1e-12);
        print_row(&[
            preset.name().to_string(),
            inst.graph.num_edges().to_string(),
            inst.batch.len().to_string(),
            format!("{update_ms:.3}"),
            format!("{kernel_ms:.3}"),
            format!("{ratio:.1}%"),
            r.stats.dirty_vertices.to_string(),
            format!("{:.3}", r.stats.preprocess_seconds * 1e3),
        ]);
    }
    println!("\nThe paper's observation: a larger data size (larger update volume) costs");
    println!("more update time, while the *ratio* stays a modest share of the total.");
}
