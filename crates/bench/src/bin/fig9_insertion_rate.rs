//! Figure 9: scalability vs insertion rate — average latency and solved
//! share for Ir ∈ {2, 4, 6, 8, 10}%, on GH and ST, per query class.
//!
//! `cargo run --release -p gamma-bench --bin fig9_insertion_rate`

use gamma_bench::{
    build_instance, print_header, print_row, run_baseline, run_gamma, BenchParams, Cell,
    GammaVariant,
};
use gamma_datasets::{DatasetPreset, QueryClass};

fn main() {
    let base = BenchParams::from_args();
    let methods = ["RapidFlow", "SymBi"];
    println!(
        "# Figure 9 — latency & solved%% vs insertion rate (scale={}, |V(Q)|={})\n",
        base.scale, base.query_size
    );

    for preset in [DatasetPreset::GH, DatasetPreset::ST] {
        for class in QueryClass::ALL {
            println!("\n## {} — {} queries\n", preset.name(), class.name());
            let mut header = vec!["Ir".to_string()];
            for m in methods {
                header.push(m.to_string());
            }
            header.push("GAMMA".into());
            let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
            print_header(&hdr);

            for rate_pct in [2u32, 4, 6, 8, 10] {
                let mut params = base.clone();
                params.insert_rate = rate_pct as f64 / 100.0;
                let inst = build_instance(preset, class, &params);
                if inst.queries.is_empty() {
                    continue;
                }
                let mut cells: Vec<Cell> = vec![Cell::default(); methods.len() + 1];
                for q in &inst.queries {
                    for (i, m) in methods.iter().enumerate() {
                        cells[i].push(run_baseline(m, &inst.graph, q, &inst.batch, params.timeout));
                    }
                    cells[methods.len()].push(run_gamma(
                        &inst.graph,
                        q,
                        &inst.batch,
                        GammaVariant::FULL,
                        params.timeout,
                    ));
                }
                let mut row = vec![format!("{rate_pct}%")];
                row.extend(cells.iter().map(|c| c.render()));
                print_row(&row);
            }
        }
    }
}
