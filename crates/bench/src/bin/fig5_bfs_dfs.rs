//! Figure 5: BFS vs DFS in a GPU environment — (a) device-memory usage
//! over the run, (b) time breakdown (computation vs host↔device
//! communication) per query class, on the LS-shaped dataset.
//!
//! `cargo run --release -p gamma-bench --bin fig5_bfs_dfs`

use gamma_bench::{build_instance, print_header, print_row, BenchParams};
use gamma_core::{run_bfs_phase, GammaConfig, GammaEngine, IncrementalEncoder, QueryMeta};
use gamma_datasets::{DatasetPreset, QueryClass};
use gamma_gpma::{Gpma, GpmaConfig};
use gamma_graph::UpdateBatch;

fn main() {
    let mut params = BenchParams::from_args();
    params.insert_rate = params.insert_rate.min(0.06);
    // Tree queries of 7 vertices produce the fattest frontiers at this
    // scale; a deliberately small device memory provokes the overflow the
    // paper's full-size runs hit at 24 GB.
    params.query_size = params.query_size.max(7);
    let device_mem: u64 = 4 << 10;
    println!(
        "# Figure 5 — BFS vs DFS on LS (scale={}, |V(Q)|={}, device memory = {} KiB)\n",
        params.scale,
        params.query_size,
        device_mem >> 10
    );

    println!("## (b) time breakdown: computation vs communication cycles\n");
    print_header(&[
        "class",
        "mode",
        "comp cycles",
        "comm cycles",
        "comm share",
        "peak mem",
        "matches",
    ]);

    let mut bfs_samples: Vec<(&str, Vec<f64>)> = Vec::new();
    for class in QueryClass::ALL {
        let inst = build_instance(DatasetPreset::LS, class, &params);
        let Some(q) = inst.queries.first() else {
            continue;
        };
        // Post-update graph for both kernels.
        let mut g2 = inst.graph.clone();
        UpdateBatch::canonicalize(&inst.graph, &inst.batch).apply(&mut g2);

        // BFS variant with spill modeling.
        let (enc, table) = IncrementalEncoder::build(&g2, q, 2);
        let meta = QueryMeta::build(q, &table, enc.scheme(), false, 0);
        let pma = Gpma::from_graph(&g2, GpmaConfig::default());
        let bfs = run_bfs_phase(
            &pma,
            &meta,
            &table,
            &inst.batch,
            &gamma_gpu::CostModel::default(),
            device_mem,
            16.0,
        );
        print_row(&[
            class.name().to_string(),
            "BFS".into(),
            bfs.comp_cycles.to_string(),
            bfs.comm_cycles.to_string(),
            format!(
                "{:.1}%",
                100.0 * bfs.comm_cycles as f64 / (bfs.comp_cycles + bfs.comm_cycles).max(1) as f64
            ),
            format!("{} KiB", bfs.peak_bytes >> 10),
            bfs.matches.to_string(),
        ]);
        bfs_samples.push((class.name(), bfs.memory_samples.clone()));

        // DFS kernel: no intermediate materialization, no spills.
        let mut cfg = GammaConfig::default();
        cfg.coalesced_search = false;
        cfg.collect_matches = false;
        let mut engine = GammaEngine::new(inst.graph.clone(), q, cfg);
        let r = engine.apply_batch(&inst.batch);
        // DFS device memory: one frame stack per resident warp.
        let warps = 16 * 8;
        let dfs_stack_bytes = warps as u64 * (q.num_vertices() as u64) * 64 * 4; // frames x candidates x 4B
        print_row(&[
            class.name().to_string(),
            "DFS".into(),
            r.stats.kernel.device_cycles.to_string(),
            "0".into(),
            "0.0%".into(),
            format!("{} KiB", dfs_stack_bytes >> 10),
            r.positive_count.to_string(),
        ]);
    }

    println!("\n## (a) BFS device-memory usage over expansion steps (% of capacity)\n");
    for (name, samples) in &bfs_samples {
        let n = samples.len();
        if n == 0 {
            println!("{name}: (no samples)");
            continue;
        }
        let take = 24.min(n);
        let series: Vec<String> = (0..take)
            .map(|i| {
                let idx = i * (n - 1) / take.max(1);
                format!("{:.0}", samples[idx] * 100.0)
            })
            .collect();
        println!("{name} BFS: [{}]", series.join(", "));
    }
    println!("DFS (all classes): flat; bounded by per-warp stacks, see table above");
}
