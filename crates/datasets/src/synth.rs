//! Seeded power-law labeled graph generation (Chung–Lu style).

use gamma_graph::{DynamicGraph, ELabel, VLabel, VertexId, NO_ELABEL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::zipf::Zipf;

/// Shape parameters for a synthetic data graph.
#[derive(Clone, Debug)]
pub struct SynthSpec {
    /// Number of vertices.
    pub num_vertices: usize,
    /// Target average degree (`2|E|/|V|`).
    pub avg_degree: f64,
    /// Vertex label alphabet size (Table II's `|Σ_V|`).
    pub vertex_labels: usize,
    /// Edge label alphabet size (`|Σ_E|`; 1 means unlabeled edges).
    pub edge_labels: usize,
    /// Power-law exponent for the degree-weight sequence (0 = Erdős–Rényi-
    /// like; real graphs in the paper are strongly skewed, ~0.8–1.2).
    pub degree_skew: f64,
    /// Zipf exponent for vertex-label frequencies.
    pub label_skew: f64,
    /// Zipf exponent for edge-label frequencies (the paper notes NF has
    /// "highly skewed edge labels").
    pub edge_label_skew: f64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        Self {
            num_vertices: 1000,
            avg_degree: 8.0,
            vertex_labels: 5,
            edge_labels: 1,
            degree_skew: 0.9,
            label_skew: 0.6,
            edge_label_skew: 0.8,
        }
    }
}

/// Generates a connected-ish power-law graph per `spec`, deterministically
/// from `seed`.
///
/// Endpoint sampling follows the Chung–Lu model: vertex `i` is drawn with
/// probability proportional to `(i+1)^-skew` (after a random identity
/// shuffle so label and degree assignments decorrelate). Self-loops and
/// duplicate edges are rejected and resampled, so `|E|` lands exactly at
/// `round(avg_degree * |V| / 2)` unless the graph saturates.
pub fn generate_graph(spec: &SynthSpec, seed: u64) -> DynamicGraph {
    assert!(spec.num_vertices >= 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let n = spec.num_vertices;

    let mut g = DynamicGraph::with_vertices(n);
    // Labels: zipf-distributed over the alphabet.
    let label_dist = Zipf::new(spec.vertex_labels.max(1), spec.label_skew);
    for v in 0..n {
        g.set_label(v as VertexId, label_dist.sample(&mut rng) as VLabel);
    }
    let elabel_dist = Zipf::new(spec.edge_labels.max(1), spec.edge_label_skew);

    // Degree-weight ranks, shuffled so hub vertices are spread over ids.
    let weight_rank = Zipf::new(n, spec.degree_skew);
    let mut identity: Vec<VertexId> = (0..n as VertexId).collect();
    for i in (1..n).rev() {
        let j = rng.random_range(0..=i);
        identity.swap(i, j);
    }

    let target_edges = ((spec.avg_degree * n as f64) / 2.0).round() as usize;
    let max_possible = n * (n - 1) / 2;
    let target_edges = target_edges.min(max_possible);

    let mut attempts = 0usize;
    let attempt_budget = target_edges * 50 + 1000;
    while g.num_edges() < target_edges && attempts < attempt_budget {
        attempts += 1;
        let u = identity[weight_rank.sample(&mut rng)];
        let v = identity[weight_rank.sample(&mut rng)];
        if u == v {
            continue;
        }
        let el: ELabel = if spec.edge_labels <= 1 {
            NO_ELABEL
        } else {
            elabel_dist.sample(&mut rng) as ELabel
        };
        g.insert_edge(u, v, el);
    }
    // Top up deterministically if rejection sampling stalled (tiny graphs).
    if g.num_edges() < target_edges {
        'outer: for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                if g.num_edges() >= target_edges {
                    break 'outer;
                }
                g.insert_edge(u, v, NO_ELABEL);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_edge_target() {
        let spec = SynthSpec {
            num_vertices: 500,
            avg_degree: 6.0,
            ..Default::default()
        };
        let g = generate_graph(&spec, 42);
        assert_eq!(g.num_vertices(), 500);
        assert_eq!(g.num_edges(), 1500);
        assert!((g.avg_degree() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = SynthSpec::default();
        let a = generate_graph(&spec, 7);
        let b = generate_graph(&spec, 7);
        assert_eq!(a.num_edges(), b.num_edges());
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        assert_eq!(ea, eb);
        let c = generate_graph(&spec, 8);
        let ec: Vec<_> = c.edges().collect();
        assert_ne!(ea, ec);
    }

    #[test]
    fn labels_within_alphabet() {
        let spec = SynthSpec {
            vertex_labels: 3,
            edge_labels: 4,
            ..Default::default()
        };
        let g = generate_graph(&spec, 1);
        assert!(g.labels().iter().all(|&l| (l as usize) < 3));
        assert!(g.edges().all(|(_, _, el)| (el as usize) < 4));
        assert!(g.distinct_vertex_labels() <= 3);
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let spec = SynthSpec {
            num_vertices: 2000,
            avg_degree: 10.0,
            degree_skew: 1.0,
            ..Default::default()
        };
        let g = generate_graph(&spec, 5);
        let mut degs: Vec<usize> = (0..2000).map(|v| g.degree(v as u32)).collect();
        degs.sort_unstable_by(|a, b| b.cmp(a));
        // Hubs exist: top degree far above the average.
        assert!(degs[0] > 5 * 10, "top degree {} too small", degs[0]);
        // And most vertices sit below the average (power-law signature).
        let below = degs.iter().filter(|&&d| d < 10).count();
        assert!(below > 1000, "below-average count {below}");
    }

    #[test]
    fn unlabeled_edges_when_alphabet_is_one() {
        let g = generate_graph(&SynthSpec::default(), 2);
        assert!(g.edges().all(|(_, _, el)| el == NO_ELABEL));
    }

    #[test]
    fn tiny_graph_saturates_safely() {
        let spec = SynthSpec {
            num_vertices: 4,
            avg_degree: 10.0, // impossible: max 3
            ..Default::default()
        };
        let g = generate_graph(&spec, 3);
        assert_eq!(g.num_edges(), 6); // complete K4
    }
}
