//! A small Zipf/power-law sampler (kept local: `rand_distr` is outside the
//! workspace's dependency budget).

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `(rank+1)^-s`,
/// via a precomputed CDF and binary search.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s ≥ 0` (`s = 0` is
    /// uniform).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over an empty domain");
        assert!(s >= 0.0 && s.is_finite());
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in cdf.iter_mut() {
            *c /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the domain is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let x: f64 = rng.random();
        self.cdf.partition_point(|&c| c < x).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_s_zero() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "{counts:?}");
        }
    }

    #[test]
    fn skewed_when_s_large() {
        let z = Zipf::new(10, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[3]);
        assert!(counts[0] > 5_000, "{counts:?}");
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.5);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
