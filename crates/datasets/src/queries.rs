//! Query-set generation by random-walk extraction (§VI-A).
//!
//! "Following precedent studies, we generate query graphs by randomly
//! extracting subgraphs from the data graph. The query graphs are
//! categorized into Dense (d_avg ≥ 3), Sparse (d_avg < 3), and Tree
//! (d_avg = |V_Q| - 1 edges)". Extracted queries inherit vertex and edge
//! labels from the data graph, so every generated query has at least one
//! match in the unmodified graph.

use gamma_graph::{DynamicGraph, QEdge, QueryGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The three query structures of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryClass {
    /// Average degree ≥ 3.
    Dense,
    /// Average degree < 3, but not a tree.
    Sparse,
    /// Spanning tree (`|E| = |V| - 1`).
    Tree,
}

impl QueryClass {
    /// All classes in the paper's order.
    pub const ALL: [QueryClass; 3] = [QueryClass::Dense, QueryClass::Sparse, QueryClass::Tree];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            QueryClass::Dense => "Dense",
            QueryClass::Sparse => "Sparse",
            QueryClass::Tree => "Tree",
        }
    }
}

/// Generates one query of `size` vertices and the requested class by
/// random-walk extraction from `g`. Returns `None` if no suitable region
/// was found within the attempt budget (e.g. Dense queries on a very
/// sparse graph).
pub fn generate_query(
    g: &DynamicGraph,
    class: QueryClass,
    size: usize,
    rng: &mut StdRng,
) -> Option<QueryGraph> {
    assert!((2..=gamma_graph::MAX_QUERY_VERTICES).contains(&size));
    let n = g.num_vertices();
    if n < size {
        return None;
    }
    'attempt: for _ in 0..200 {
        // Random connected vertex set via neighbor expansion. Dense queries
        // seed at high-degree vertices to find dense regions faster.
        let start = match class {
            QueryClass::Dense => {
                let mut best = rng.random_range(0..n) as VertexId;
                for _ in 0..8 {
                    let c = rng.random_range(0..n) as VertexId;
                    if g.degree(c) > g.degree(best) {
                        best = c;
                    }
                }
                best
            }
            _ => rng.random_range(0..n) as VertexId,
        };
        if g.degree(start) == 0 {
            continue;
        }
        let mut chosen: Vec<VertexId> = vec![start];
        while chosen.len() < size {
            // Expand from a random chosen vertex to a random neighbor.
            let mut grown = false;
            for _ in 0..20 {
                let &anchor = &chosen[rng.random_range(0..chosen.len())];
                let nbrs = g.neighbors(anchor);
                if nbrs.is_empty() {
                    continue;
                }
                let (cand, _) = nbrs[rng.random_range(0..nbrs.len())];
                if !chosen.contains(&cand) {
                    chosen.push(cand);
                    grown = true;
                    break;
                }
            }
            if !grown {
                continue 'attempt;
            }
        }

        // Induced edges among chosen vertices.
        let mut edges: Vec<(u8, u8, u16)> = Vec::new();
        for i in 0..size {
            for j in (i + 1)..size {
                if let Some(el) = g.edge_label(chosen[i], chosen[j]) {
                    edges.push((i as u8, j as u8, el));
                }
            }
        }

        let kept = match class {
            QueryClass::Dense => {
                // Need d_avg >= 3, i.e. |E| >= ceil(1.5 |V|).
                let need = (3 * size).div_ceil(2);
                if edges.len() < need {
                    continue;
                }
                edges
            }
            QueryClass::Tree => spanning_tree(size, &edges, rng)?,
            QueryClass::Sparse => {
                // Tree edges plus at least one extra, staying under
                // d_avg < 3 (|E| < 1.5 |V|).
                let tree = spanning_tree(size, &edges, rng)?;
                let limit = ((3 * size - 1) / 2).max(size); // |E| <= this keeps d_avg < 3
                let mut kept = tree.clone();
                let mut extras: Vec<(u8, u8, u16)> = edges
                    .iter()
                    .copied()
                    .filter(|e| !tree.contains(e))
                    .collect();
                if extras.is_empty() {
                    continue; // would be a tree, not Sparse
                }
                // Shuffle extras and add while under the cap.
                for i in (1..extras.len()).rev() {
                    let j = rng.random_range(0..=i);
                    extras.swap(i, j);
                }
                for e in extras {
                    if kept.len() >= limit {
                        break;
                    }
                    kept.push(e);
                }
                if kept.len() == tree.len() {
                    continue;
                }
                kept
            }
        };

        let mut b = QueryGraph::builder();
        for &v in &chosen {
            b.vertex(g.label(v));
        }
        for &(i, j, el) in &kept {
            b.edge_labeled(i, j, el);
        }
        let q = b.build();
        debug_assert!(q.is_connected());
        match class {
            QueryClass::Dense => debug_assert!(q.avg_degree() >= 3.0),
            QueryClass::Sparse => debug_assert!(q.avg_degree() < 3.0 && !q.is_tree()),
            QueryClass::Tree => debug_assert!(q.is_tree()),
        }
        return Some(q);
    }
    None
}

/// Random spanning tree over the `size` vertices using only `edges`;
/// `None` if the induced subgraph is disconnected.
fn spanning_tree(
    size: usize,
    edges: &[(u8, u8, u16)],
    rng: &mut StdRng,
) -> Option<Vec<(u8, u8, u16)>> {
    let mut order: Vec<usize> = (0..edges.len()).collect();
    for i in (1..order.len()).rev() {
        let j = rng.random_range(0..=i);
        order.swap(i, j);
    }
    // Union-find.
    let mut parent: Vec<u8> = (0..size as u8).collect();
    fn find(parent: &mut [u8], x: u8) -> u8 {
        if parent[x as usize] != x {
            let r = find(parent, parent[x as usize]);
            parent[x as usize] = r;
        }
        parent[x as usize]
    }
    let mut tree = Vec::with_capacity(size - 1);
    for idx in order {
        let (a, bb, el) = edges[idx];
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, bb));
        if ra != rb {
            parent[ra as usize] = rb;
            tree.push((a, bb, el));
            if tree.len() == size - 1 {
                return Some(tree);
            }
        }
    }
    None
}

/// Generates a query set: `count` queries of the class and size, skipping
/// failed extractions (the returned set may be smaller on hostile graphs).
pub fn generate_queries(
    g: &DynamicGraph,
    class: QueryClass,
    size: usize,
    count: usize,
    seed: u64,
) -> Vec<QueryGraph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count * 3 {
        if out.len() == count {
            break;
        }
        if let Some(q) = generate_query(g, class, size, &mut rng) {
            out.push(q);
        }
    }
    out
}

/// Checks that `q`'s edges (as a QEdge list) are plausible; testing aid.
pub fn assert_class(q: &QueryGraph, class: QueryClass) {
    let _: &[QEdge] = q.edges();
    match class {
        QueryClass::Dense => assert!(q.avg_degree() >= 3.0, "not dense: {}", q.avg_degree()),
        QueryClass::Sparse => {
            assert!(q.avg_degree() < 3.0 && !q.is_tree(), "not sparse")
        }
        QueryClass::Tree => assert!(q.is_tree(), "not a tree"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetPreset;
    use gamma_graph::enumerate_matches;

    #[test]
    fn classes_respected_on_gh() {
        let d = DatasetPreset::GH.build(0.3, 11);
        for class in QueryClass::ALL {
            let qs = generate_queries(&d.graph, class, 6, 5, 99);
            assert!(!qs.is_empty(), "{}: no queries", class.name());
            for q in &qs {
                assert_eq!(q.num_vertices(), 6);
                assert_class(q, class);
            }
        }
    }

    #[test]
    fn extracted_queries_have_matches() {
        let d = DatasetPreset::GH.build(0.2, 12);
        for class in QueryClass::ALL {
            let qs = generate_queries(&d.graph, class, 5, 3, 100);
            for q in &qs {
                let ms = enumerate_matches(&d.graph, q, Some(1));
                assert!(!ms.is_empty(), "{} query without match", class.name());
            }
        }
    }

    #[test]
    fn sizes_span_4_to_12() {
        let d = DatasetPreset::LJ.build(0.15, 13);
        for size in [4usize, 8, 12] {
            let qs = generate_queries(&d.graph, QueryClass::Tree, size, 2, size as u64);
            for q in &qs {
                assert_eq!(q.num_vertices(), size);
                assert!(q.is_tree());
            }
        }
    }

    #[test]
    fn dense_queries_unavailable_on_sparse_graph() {
        // NF has d_avg = 2; dense 8-vertex regions are essentially absent.
        let d = DatasetPreset::NF.build(0.2, 14);
        let qs = generate_queries(&d.graph, QueryClass::Dense, 10, 3, 15);
        // Not asserting emptiness (RNG may find a pocket), but the API must
        // not hang or panic and any result must really be dense.
        for q in &qs {
            assert_class(q, QueryClass::Dense);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = DatasetPreset::AZ.build(0.2, 15);
        let a = generate_queries(&d.graph, QueryClass::Sparse, 6, 4, 7);
        let b = generate_queries(&d.graph, QueryClass::Sparse, 6, 4, 7);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.edges(), y.edges());
            assert_eq!(x.labels(), y.labels());
        }
    }

    #[test]
    fn edge_labels_preserved_on_ls() {
        let d = DatasetPreset::LS.build(0.2, 16);
        let qs = generate_queries(&d.graph, QueryClass::Tree, 5, 3, 8);
        // LS has 44 edge labels; extracted queries should carry them.
        let any_labeled = qs
            .iter()
            .flat_map(|q| q.edges())
            .any(|e| e.label != gamma_graph::NO_ELABEL);
        assert!(any_labeled || qs.is_empty());
    }
}
