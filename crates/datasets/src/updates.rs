//! Update-stream generation (§VI-A, Figures 9–11; Figure 6's skewed star).

use gamma_graph::{kcore::core_numbers, DynamicGraph, QueryGraph, Update, VertexId, NO_ELABEL};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Produces an insertion batch of `rate * |E|` edges by *removing* that
/// many random edges from `g` (mutating it into the pre-batch graph) and
/// returning them as insertions. This mirrors the standard CSM evaluation
/// setup: the inserted edges are real edges of the dataset, so insertions
/// have realistic label/degree structure.
pub fn split_insertion_workload(g: &mut DynamicGraph, rate: f64, seed: u64) -> Vec<Update> {
    assert!((0.0..=1.0).contains(&rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let count = ((g.num_edges() as f64) * rate).round() as usize;
    let mut edges: Vec<(VertexId, VertexId, u16)> = g.edges().collect();
    partial_shuffle(&mut edges, count, &mut rng);
    let mut updates = Vec::with_capacity(count);
    for &(u, v, l) in edges.iter().take(count) {
        g.delete_edge(u, v);
        updates.push(Update::insert_labeled(u, v, l));
    }
    updates
}

/// Samples a deletion batch of `rate * |E|` live edges (without mutating
/// `g`; the engine applies them).
pub fn sample_deletion_workload(g: &DynamicGraph, rate: f64, seed: u64) -> Vec<Update> {
    assert!((0.0..=1.0).contains(&rate));
    let mut rng = StdRng::seed_from_u64(seed);
    let count = ((g.num_edges() as f64) * rate).round() as usize;
    let mut edges: Vec<(VertexId, VertexId, u16)> = g.edges().collect();
    partial_shuffle(&mut edges, count, &mut rng);
    edges
        .iter()
        .take(count)
        .map(|&(u, v, _)| Update::delete(u, v))
        .collect()
}

/// Mixed workload at the paper's 2:1 insertion:deletion ratio (Figure 11):
/// `rate * |E|` total updates; insertions are split out of `g` (mutating
/// it), deletions sample the remaining edges. The returned batch
/// interleaves both kinds.
pub fn mixed_workload(g: &mut DynamicGraph, rate: f64, seed: u64) -> Vec<Update> {
    let ins_rate = rate * 2.0 / 3.0;
    let del_rate_of_remaining = (rate / 3.0) * (1.0 / (1.0 - ins_rate)).min(1.0);
    let mut ins = split_insertion_workload(g, ins_rate, seed);
    let del = sample_deletion_workload(g, del_rate_of_remaining.min(1.0), seed ^ 0x5eed);
    // Interleave 2 inserts : 1 delete to mimic a mixed stream.
    let mut out = Vec::with_capacity(ins.len() + del.len());
    let mut di = del.into_iter();
    for (i, u) in ins.drain(..).enumerate() {
        out.push(u);
        if i % 2 == 1 {
            if let Some(d) = di.next() {
                out.push(d);
            }
        }
    }
    out.extend(di);
    out
}

/// Figure-10 density workload: insertions restricted to edges whose *both*
/// endpoints lie in the k-core of `g` ("we perform k-core decomposition …
/// and sample edges from these cores for insertions"). Mutates `g` by
/// removing the sampled edges. Returns `None` if the k-core holds fewer
/// than `count` qualifying edges.
pub fn kcore_insertion_workload(
    g: &mut DynamicGraph,
    rate: f64,
    k: u32,
    seed: u64,
) -> Option<Vec<Update>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let count = ((g.num_edges() as f64) * rate).round() as usize;
    let core = core_numbers(g);
    let mut eligible: Vec<(VertexId, VertexId, u16)> = g
        .edges()
        .filter(|&(u, v, _)| core[u as usize] >= k && core[v as usize] >= k)
        .collect();
    if eligible.len() < count {
        return None;
    }
    partial_shuffle(&mut eligible, count, &mut rng);
    let mut updates = Vec::with_capacity(count);
    for &(u, v, l) in eligible.iter().take(count) {
        g.delete_edge(u, v);
        updates.push(Update::insert_labeled(u, v, l));
    }
    Some(updates)
}

/// The Figure-6 workload: a two-hub star graph where one update edge has a
/// tiny match subtree and the other a huge one, producing the skewed warp
/// workloads that motivate work stealing. Returns `(graph, updates, query)`:
///
/// * data graph: hubs `v0`, `v1` (label A) share `spokes` B-neighbors; each
///   spoke also connects to a C vertex; `v1`'s side additionally fans out.
/// * updates: insert `(v0, x)` and `(v1, x)` for a fresh B vertex `x`,
///   mirroring the paper's `e(v0, v102)` / `e(v1, v102)` example.
/// * query: the A–B edge extended to a B and a C (4-vertex path/star),
///   whose match counts differ wildly between the two updates.
pub fn skewed_star_workload(
    spokes_small: usize,
    spokes_large: usize,
) -> (DynamicGraph, Vec<Update>, QueryGraph) {
    let mut g = DynamicGraph::new();
    let v0 = g.add_vertex(0); // A, small side
    let v1 = g.add_vertex(0); // A, large side

    // Shared bridge vertex the updates attach: label B.
    let bridge = g.add_vertex(1);
    let c_tail = g.add_vertex(2); // C
    g.insert_edge(bridge, c_tail, NO_ELABEL);
    for _ in 0..spokes_small {
        let b = g.add_vertex(1);
        let c = g.add_vertex(2);
        g.insert_edge(v0, b, NO_ELABEL);
        g.insert_edge(b, c, NO_ELABEL);
    }
    for _ in 0..spokes_large {
        let b = g.add_vertex(1);
        let c = g.add_vertex(2);
        g.insert_edge(v1, b, NO_ELABEL);
        g.insert_edge(b, c, NO_ELABEL);
    }
    let updates = vec![Update::insert(v0, bridge), Update::insert(v1, bridge)];

    // Query: A(u0) - B(u1), A - B(u2), B(u2) - C(u3): after mapping the
    // update to (u0,u1), u2 ranges over the hub's other spokes — few for
    // v0, many for v1.
    let mut b = QueryGraph::builder();
    let u0 = b.vertex(0);
    let u1 = b.vertex(1);
    let u2 = b.vertex(1);
    let u3 = b.vertex(2);
    b.edge(u0, u1).edge(u0, u2).edge(u2, u3);
    (g, updates, b.build())
}

/// Partition-aware routing helper: groups an update stream into
/// per-shard queues by the owner of each edge's canonical (smaller-id)
/// endpoint — the same routing rule the sharded engine applies to
/// anchors, so a pre-routed stream can be replayed shard-by-shard (e.g.
/// to drive per-device ingestion pipelines or to balance generator
/// output). `owner` is any vertex → shard map (pass
/// `|v| partition.owner(v)` from the engine's `Partition`); updates are
/// kept in stream order within each queue.
pub fn route_updates_by_owner(
    updates: &[Update],
    num_shards: usize,
    owner: impl Fn(VertexId) -> usize,
) -> Vec<Vec<Update>> {
    assert!(num_shards >= 1, "need at least one shard");
    let mut queues: Vec<Vec<Update>> = vec![Vec::new(); num_shards];
    for &u in updates {
        let (lo, _) = u.endpoints();
        let s = owner(lo);
        assert!(s < num_shards, "owner map returned out-of-range shard {s}");
        queues[s].push(u);
    }
    queues
}

/// Fisher–Yates prefix shuffle: randomizes the first `count` positions.
fn partial_shuffle<T>(items: &mut [T], count: usize, rng: &mut StdRng) {
    let n = items.len();
    for i in 0..count.min(n.saturating_sub(1)) {
        let j = rng.random_range(i..n);
        items.swap(i, j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DatasetPreset;
    use gamma_graph::{Op, UpdateBatch};

    #[test]
    fn split_insertions_roundtrip() {
        let mut d = DatasetPreset::GH.build(0.2, 21);
        let e0 = d.graph.num_edges();
        let ups = split_insertion_workload(&mut d.graph, 0.1, 5);
        assert_eq!(ups.len(), (e0 as f64 * 0.1).round() as usize);
        assert_eq!(d.graph.num_edges(), e0 - ups.len());
        // All updates are insertions of currently-absent edges.
        for u in &ups {
            assert_eq!(u.op, Op::Insert);
            assert!(!d.graph.has_edge(u.u, u.v));
        }
        // Canonicalization keeps them all.
        let b = UpdateBatch::canonicalize(&d.graph, &ups);
        assert_eq!(b.inserts.len(), ups.len());
        assert!(b.deletes.is_empty());
    }

    #[test]
    fn deletions_reference_live_edges() {
        let d = DatasetPreset::AZ.build(0.15, 22);
        let ups = sample_deletion_workload(&d.graph, 0.05, 6);
        assert!(!ups.is_empty());
        for u in &ups {
            assert_eq!(u.op, Op::Delete);
            assert!(d.graph.has_edge(u.u, u.v));
        }
        // No duplicates.
        let keys: std::collections::BTreeSet<u64> = ups.iter().map(|u| u.key()).collect();
        assert_eq!(keys.len(), ups.len());
    }

    #[test]
    fn mixed_ratio_close_to_two_to_one() {
        let mut d = DatasetPreset::ST.build(0.2, 23);
        let ups = mixed_workload(&mut d.graph, 0.09, 7);
        let ins = ups.iter().filter(|u| u.op == Op::Insert).count();
        let del = ups.len() - ins;
        assert!(ins > 0 && del > 0);
        let ratio = ins as f64 / del as f64;
        assert!((1.5..=2.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn kcore_insertions_in_core() {
        let mut d = DatasetPreset::LS.build(0.3, 24);
        let g_before = d.graph.clone();
        let ups =
            kcore_insertion_workload(&mut d.graph, 0.02, 4, 8).expect("LS-like graph has a 4-core");
        let core = core_numbers(&g_before);
        for u in &ups {
            assert!(core[u.u as usize] >= 4 && core[u.v as usize] >= 4);
        }
        // Impossibly dense request fails gracefully.
        assert!(kcore_insertion_workload(&mut d.graph, 0.9, 50, 9).is_none());
    }

    #[test]
    fn skewed_star_shape() {
        let (g, ups, q) = skewed_star_workload(2, 100);
        assert_eq!(ups.len(), 2);
        assert_eq!(q.num_vertices(), 4);
        // v0 has 2 spokes, v1 has 100.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 100);
        // Update endpoints exist and edges are absent pre-batch.
        for u in &ups {
            assert!(!g.has_edge(u.u, u.v));
        }
    }

    #[test]
    fn routing_partitions_the_stream() {
        let ups = vec![
            Update::insert(5, 2),
            Update::delete(1, 9),
            Update::insert(3, 3),
            Update::insert(0, 7),
        ];
        let routed = route_updates_by_owner(&ups, 3, |v| (v as usize) % 3);
        // Canonical endpoints: (2,5)→2%3=2, (1,9)→1, (3,3)→0, (0,7)→0.
        assert_eq!(routed[0], vec![Update::insert(3, 3), Update::insert(0, 7)]);
        assert_eq!(routed[1], vec![Update::delete(1, 9)]);
        assert_eq!(routed[2], vec![Update::insert(5, 2)]);
        // Complete: every update lands in exactly one queue.
        let total: usize = routed.iter().map(Vec::len).sum();
        assert_eq!(total, ups.len());
    }

    #[test]
    fn deterministic_workloads() {
        let mut a = DatasetPreset::GH.build(0.15, 25);
        let mut b = DatasetPreset::GH.build(0.15, 25);
        let ua = split_insertion_workload(&mut a.graph, 0.08, 11);
        let ub = split_insertion_workload(&mut b.graph, 0.08, 11);
        assert_eq!(ua, ub);
    }
}
