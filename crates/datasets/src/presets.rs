//! Scaled-down analogues of the paper's six datasets (Table II).

use gamma_graph::DynamicGraph;

use crate::synth::{generate_graph, SynthSpec};

/// The six dataset shapes of Table II.
///
/// | preset | paper |V| | paper |E| | |Σ_V| | |Σ_E| | d_avg |
/// |--------|-----------|-----------|-------|-------|-------|
/// | GH     | 37.7K     | 0.3M      | 5     | 1     | 15.3  |
/// | ST     | 1.7M      | 11.1M     | 25    | 1     | 13.1  |
/// | AZ     | 0.4M      | 2.4M      | 6     | 1     | 12.2  |
/// | LJ     | 4.9M      | 42.9M     | 30    | 1     | 18.1  |
/// | NF     | 3.1M      | 2.9M      | 1     | 7     | 2.0   |
/// | LS     | 5.2M      | 20.3M     | 1     | 44    | 8.2   |
///
/// The synthetic analogue keeps `|Σ_V|`, `|Σ_E|` and `d_avg` exactly and
/// scales `|V|` to a laptop-friendly default (`scale = 1.0` ≈ thousands of
/// vertices; pass a larger scale for stress runs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum DatasetPreset {
    /// GitHub: small, dense-ish, 5 vertex labels.
    GH,
    /// Skitter: large, 25 vertex labels.
    ST,
    /// Amazon: mid-sized, 6 vertex labels.
    AZ,
    /// LiveJournal: largest, highest average degree.
    LJ,
    /// Netflow: edge-labeled (7), very sparse, single vertex label.
    NF,
    /// LSBench: edge-labeled (44), single vertex label.
    LS,
}

impl DatasetPreset {
    /// All six presets in Table II order.
    pub const ALL: [DatasetPreset; 6] = [
        DatasetPreset::GH,
        DatasetPreset::ST,
        DatasetPreset::AZ,
        DatasetPreset::LJ,
        DatasetPreset::NF,
        DatasetPreset::LS,
    ];

    /// Table II's short name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::GH => "GH",
            DatasetPreset::ST => "ST",
            DatasetPreset::AZ => "AZ",
            DatasetPreset::LJ => "LJ",
            DatasetPreset::NF => "NF",
            DatasetPreset::LS => "LS",
        }
    }

    /// The generator spec at `scale = 1.0`.
    pub fn spec(&self, scale: f64) -> SynthSpec {
        let (base_v, avg_degree, vertex_labels, edge_labels): (usize, f64, usize, usize) =
            match self {
                DatasetPreset::GH => (1_800, 15.3, 5, 1),
                DatasetPreset::ST => (6_000, 13.1, 25, 1),
                DatasetPreset::AZ => (3_500, 12.2, 6, 1),
                DatasetPreset::LJ => (8_000, 18.1, 30, 1),
                DatasetPreset::NF => (6_000, 2.0, 1, 7),
                DatasetPreset::LS => (7_000, 8.2, 1, 44),
            };
        SynthSpec {
            num_vertices: ((base_v as f64 * scale).round() as usize).max(16),
            avg_degree,
            vertex_labels,
            edge_labels,
            degree_skew: 0.9,
            label_skew: 0.6,
            edge_label_skew: match self {
                // NF's edge labels are called out as highly skewed (§VI-B).
                DatasetPreset::NF => 1.4,
                _ => 0.8,
            },
        }
    }

    /// Generates the dataset at the given scale, deterministically.
    pub fn build(&self, scale: f64, seed: u64) -> Dataset {
        let spec = self.spec(scale);
        let graph = generate_graph(&spec, seed ^ (*self as u64) << 32);
        Dataset {
            preset: *self,
            graph,
            spec,
        }
    }
}

/// A generated dataset: the graph plus its provenance.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Which Table II shape this mimics.
    pub preset: DatasetPreset,
    /// The data graph.
    pub graph: DynamicGraph,
    /// The spec it was generated from.
    pub spec: SynthSpec,
}

impl Dataset {
    /// Short name (Table II).
    pub fn name(&self) -> &'static str {
        self.preset.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_build() {
        for p in DatasetPreset::ALL {
            let d = p.build(0.25, 1);
            assert!(d.graph.num_vertices() >= 16, "{}", p.name());
            assert!(d.graph.num_edges() > 0, "{}", p.name());
        }
    }

    #[test]
    fn shape_parameters_respected() {
        let gh = DatasetPreset::GH.build(1.0, 2);
        assert_eq!(gh.graph.num_vertices(), 1800);
        assert!((gh.graph.avg_degree() - 15.3).abs() < 0.2);
        assert!(gh.graph.distinct_vertex_labels() <= 5);

        let nf = DatasetPreset::NF.build(1.0, 2);
        assert!((nf.graph.avg_degree() - 2.0).abs() < 0.1);
        assert_eq!(nf.graph.distinct_vertex_labels(), 1);
        // Edge labels in use.
        let distinct_elabels: std::collections::BTreeSet<_> =
            nf.graph.edges().map(|(_, _, l)| l).collect();
        assert!(distinct_elabels.len() > 1);
    }

    #[test]
    fn scaling_scales_vertices() {
        let small = DatasetPreset::AZ.build(0.1, 3);
        let big = DatasetPreset::AZ.build(0.5, 3);
        assert!(big.graph.num_vertices() > 4 * small.graph.num_vertices());
    }

    #[test]
    fn lj_vs_ls_degree_story() {
        // The paper: "LJ boasts a substantially higher average degree"
        // than LS. The presets must preserve that relation.
        let lj = DatasetPreset::LJ.build(0.25, 4);
        let ls = DatasetPreset::LS.build(0.25, 4);
        assert!(lj.graph.avg_degree() > 2.0 * ls.graph.avg_degree());
    }
}
