//! # gamma-datasets — workload generation for the GAMMA reproduction
//!
//! The paper evaluates on six public datasets (GitHub, Skitter, Amazon,
//! LiveJournal, Netflow, LSBench; Table II). Those graphs are not shipped
//! here; instead this crate generates **seeded synthetic graphs with the
//! same shape parameters** — |V|:|E| ratio, average degree, vertex/edge
//! label alphabet sizes and power-law degree skew — scaled down to sizes a
//! laptop handles in seconds (see `DESIGN.md` for the substitution
//! rationale).
//!
//! It also reproduces the paper's workload machinery:
//!
//! * query generation by random-walk extraction of subgraphs from the data
//!   graph, classified Dense / Sparse / Tree exactly as in §VI-A;
//! * update streams: an insertion batch is produced by *removing* a random
//!   `Ir`% of edges from the generated graph (so inserted edges are
//!   distributionally real edges) and replaying them; deletions sample live
//!   edges; mixed workloads use the paper's 2:1 insert:delete ratio;
//! * k-core-targeted sampling for the Figure-10 density experiment;
//! * the skewed star workload of Figure 6 that motivates work stealing.

pub mod presets;
pub mod queries;
pub mod synth;
pub mod updates;
pub mod zipf;

pub use presets::{Dataset, DatasetPreset};
pub use queries::{generate_queries, generate_query, QueryClass};
pub use synth::{generate_graph, SynthSpec};
pub use updates::{
    kcore_insertion_workload, mixed_workload, route_updates_by_owner, sample_deletion_workload,
    skewed_star_workload, split_insertion_workload,
};
pub use zipf::Zipf;
