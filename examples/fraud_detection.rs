//! E-commerce fraud-ring detection over batched transaction updates.
//!
//! The paper's introduction motivates BDSM with e-commerce platforms where
//! "graph databases are collected and updated in batches, leveraging
//! subgraph matching for tasks such as identifying patterns of malicious
//! activity". This example builds a marketplace graph (accounts, devices,
//! merchants), streams batches of new activity through the engine, and
//! alerts on a classic collusion motif: two accounts that share a device
//! and both pay the same merchant.
//!
//! Run with: `cargo run --release --example fraud_detection`

use gamma::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ACCOUNT: u16 = 0;
const DEVICE: u16 = 1;
const MERCHANT: u16 = 2;

fn main() {
    let mut rng = StdRng::seed_from_u64(2024);

    // Marketplace: 600 accounts, 250 devices, 120 merchants.
    let mut g = DynamicGraph::new();
    let accounts: Vec<u32> = (0..600).map(|_| g.add_vertex(ACCOUNT)).collect();
    let devices: Vec<u32> = (0..250).map(|_| g.add_vertex(DEVICE)).collect();
    let merchants: Vec<u32> = (0..120).map(|_| g.add_vertex(MERCHANT)).collect();

    // Historic activity: account-device logins and account-merchant
    // purchases.
    for &a in &accounts {
        let d = devices[rng.random_range(0..devices.len())];
        g.insert_edge(a, d, NO_ELABEL);
        for _ in 0..rng.random_range(1..4) {
            let m = merchants[rng.random_range(0..merchants.len())];
            g.insert_edge(a, m, NO_ELABEL);
        }
    }
    println!(
        "marketplace graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Collusion motif: two ACCOUNTs sharing a DEVICE, both paying one
    // MERCHANT — a 4-vertex cycle with labels A-D-A-M. The two account
    // roles are symmetric: coalesced search finds the automorphism and
    // halves the anchored exploration.
    let mut b = QueryGraph::builder();
    let a1 = b.vertex(ACCOUNT);
    let a2 = b.vertex(ACCOUNT);
    let dev = b.vertex(DEVICE);
    let mer = b.vertex(MERCHANT);
    b.edge(a1, dev).edge(a2, dev).edge(a1, mer).edge(a2, mer);
    let ring = b.build();

    let mut engine = GammaEngine::new(g.clone(), &ring, GammaConfig::default());
    println!(
        "fraud motif registered; {} equivalence class(es) found by coalesced search",
        engine.meta().plan.classes.len()
    );

    // Stream five batches of fresh activity; a planted fraud ring appears
    // in batch 3.
    let mut total_alerts = 0u64;
    for batch_no in 1..=5 {
        let mut batch: Vec<Update> = Vec::new();
        for _ in 0..120 {
            // Organic activity: logins and purchases.
            let a = accounts[rng.random_range(0..accounts.len())];
            if rng.random_bool(0.3) {
                let d = devices[rng.random_range(0..devices.len())];
                batch.push(Update::insert(a, d));
            } else {
                let m = merchants[rng.random_range(0..merchants.len())];
                batch.push(Update::insert(a, m));
            }
        }
        // Old sessions expire: a few deletions per batch.
        for _ in 0..20 {
            let a = accounts[rng.random_range(0..accounts.len())];
            if let Some(&(n, _)) = engine.graph().neighbors(a).first() {
                batch.push(Update::delete(a, n));
            }
        }
        if batch_no == 3 {
            // Planted ring: two mule accounts, one burner device, one
            // complicit merchant — all edges land in the same batch.
            let (m1, m2) = (accounts[7], accounts[13]);
            let burner = devices[0];
            let shop = merchants[0];
            batch.push(Update::insert(m1, burner));
            batch.push(Update::insert(m2, burner));
            batch.push(Update::insert(m1, shop));
            batch.push(Update::insert(m2, shop));
            println!("  (batch 3 carries a planted ring: accounts v{m1}, v{m2})");
        }

        let r = engine.apply_batch(&batch);
        total_alerts += r.positive_count;
        println!(
            "batch {batch_no}: {:>3} updates → {:>3} new rings, {:>2} dissolved \
             ({} warp tasks, util {:.0}%, {} steals)",
            batch.len(),
            r.positive_count,
            r.negative_count,
            r.stats.kernel.num_tasks,
            r.stats.kernel.utilization() * 100.0,
            r.stats.kernel.steals,
        );
        if batch_no == 3 {
            let planted = r.positive.iter().any(|m| {
                let vs: Vec<u32> = m.pairs().map(|(_, v)| v).collect();
                vs.contains(&accounts[7]) && vs.contains(&accounts[13])
            });
            assert!(planted, "the planted ring must be detected in its batch");
            println!("  >> planted ring detected");
        }
    }
    println!("\ntotal fraud-ring alerts across the stream: {total_alerts}");
}
