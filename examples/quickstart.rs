//! Quickstart: the paper's Figure 1, end to end.
//!
//! Builds the data graph `G` and query `Q` of Figure 1, applies the
//! three-update batch of Example 1, and prints the incremental matches the
//! BDSM engine reports — four positives, zero negatives, because the
//! `+(v1,v4)` / `-(v4,v5)` churn cancels inside one batch.
//!
//! Run with: `cargo run --release --example quickstart`

use gamma::prelude::*;

fn main() {
    // Labels: A = 0, B = 1, C = 2.
    const A: u16 = 0;
    const B: u16 = 1;
    const C: u16 = 2;

    // Data graph G of Figure 1(b), pre-update: v0,v1 are A; v2..v6 are B;
    // v7..v9 are C (v4-v5 added so the deletion in the batch has a target).
    let mut g = DynamicGraph::new();
    for &l in &[A, A, B, B, B, B, B, C, C, C] {
        g.add_vertex(l);
    }
    for &(u, v) in &[
        (0, 3),
        (0, 4),
        (2, 3),
        (2, 4),
        (3, 7),
        (2, 8),
        (1, 5),
        (1, 6),
        (5, 6),
        (5, 9),
        (4, 7),
        (4, 5),
    ] {
        g.insert_edge(u, v, NO_ELABEL);
    }

    // Query Q of Figure 1(a): the A-B-B triangle with a C tail on u1.
    let mut b = QueryGraph::builder();
    let u0 = b.vertex(A);
    let u1 = b.vertex(B);
    let u2 = b.vertex(B);
    let u3 = b.vertex(C);
    b.edge(u0, u1).edge(u0, u2).edge(u1, u2).edge(u1, u3);
    let q = b.build();

    println!(
        "data graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    println!(
        "query:      {} vertices, {} edges (dense: {})",
        q.num_vertices(),
        q.num_edges(),
        q.avg_degree() >= 3.0
    );

    // The engine: preprocessing (NLF encoding + candidate table), GPMA
    // bulk load, matching orders and the coalesced-search plan all happen
    // here.
    let mut engine = GammaEngine::new(g, &q, GammaConfig::default());
    println!(
        "coalesced-search classes: {:?}",
        engine
            .meta()
            .plan
            .classes
            .iter()
            .map(|c| c.all_edges())
            .collect::<Vec<_>>()
    );

    // Example 1's batch: three updates arriving together.
    let batch = [
        Update::insert(0, 2), // +(v0, v2)
        Update::insert(1, 4), // +(v1, v4)
        Update::delete(4, 5), // -(v4, v5): cancels the (v1,v4) matches
    ];
    let result = engine.apply_batch(&batch);

    println!("\nBDSM results for the batch {{+(v0,v2), +(v1,v4), -(v4,v5)}}:");
    println!(
        "  net updates after canonicalization: {}",
        result.stats.net_updates
    );
    println!("  positive matches: {}", result.positive_count);
    for m in &result.positive {
        println!("    {m:?}");
    }
    println!("  negative matches: {}", result.negative_count);
    for m in &result.negative {
        println!("    {m:?}");
    }
    println!("\nkernel statistics:");
    println!("  warp tasks:        {}", result.stats.kernel.num_tasks);
    println!("  device cycles:     {}", result.stats.kernel.device_cycles);
    println!(
        "  GPU utilization:   {:.1}%",
        result.stats.kernel.utilization() * 100.0
    );
    println!("  steals:            {}", result.stats.kernel.steals);
    println!("  GPMA update cycles: {}", result.stats.update_cycles);

    assert_eq!(result.positive_count, 4, "Figure 1 promises M1..M4");
    assert_eq!(result.negative_count, 0, "churn must cancel");
    println!("\nOK: matches M1..M4 of Figure 1 reproduced.");
}
