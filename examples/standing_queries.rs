//! Standing queries: the serving tier that keeps N registered patterns
//! continuously matched against one evolving graph.
//!
//! A [`QueryRegistry`] owns the data graph and its device-resident store.
//! Clients `register` patterns and get back a [`QueryId`]; every
//! `apply_batch` then runs the batch **once** — one structural update, one
//! re-encoding pass, and one kernel launch per *group* of queries whose
//! matching-order prefixes are compatible — and routes a per-query match
//! delta to every subscription. Identical patterns collapse into one
//! group, so serving them costs barely more than serving one.
//!
//! The delta each subscription receives is bit-identical to what a
//! dedicated [`GammaEngine`] running that pattern alone would report —
//! pinned by `tests/registry_parity.rs` across the preset matrix.
//!
//! Run with: `cargo run --release --example standing_queries`

use gamma::prelude::*;

fn main() {
    // A synthetic GitHub-shaped dataset, small enough to read the numbers.
    let dataset = DatasetPreset::GH.build(0.06, 7);
    let graph = dataset.graph;

    // Three standing patterns: a dense clique-ish motif, a sparse path
    // motif, and a *duplicate* of the dense one (a second subscriber to
    // the same alert — the registry serves both from one shared group).
    let dense = gamma::datasets::generate_queries(&graph, QueryClass::Dense, 4, 1, 1234)
        .pop()
        .expect("dense query extractable");
    let sparse = gamma::datasets::generate_queries(&graph, QueryClass::Sparse, 4, 1, 4321)
        .pop()
        .expect("sparse query extractable");

    let mut registry = QueryRegistry::new(graph.clone(), GammaConfig::default());
    let alerts_team = registry.register(&dense, QueryConfig::default());
    let analytics = registry.register(&sparse, QueryConfig::default());
    let audit_team = registry.register(&dense, QueryConfig::default());

    println!(
        "registered {} standing queries in {} kernel groups",
        registry.num_queries(),
        registry.group_count()
    );
    assert_eq!(
        registry.group_count(),
        2,
        "the duplicate dense subscriptions share one group"
    );

    // A churn stream: delete 8% of live edges, then re-insert them.
    let deletes = gamma::datasets::sample_deletion_workload(&graph, 0.08, 99);
    let inserts: Vec<Update> = deletes
        .iter()
        .map(|u| {
            let label = graph.edge_label(u.u, u.v).expect("live edge");
            Update::insert_labeled(u.u, u.v, label)
        })
        .collect();

    for (name, batch) in [("delete", &deletes), ("re-insert", &inserts)] {
        let r = registry.apply_batch(batch);
        println!("\nbatch `{name}` ({} updates):", batch.len());
        for (label, id) in [
            ("alerts", alerts_team),
            ("analytics", analytics),
            ("audit", audit_team),
        ] {
            let d = r.delta(id).expect("registered id has a delta");
            println!(
                "  {label:>9}: +{} / -{} matches",
                d.positive_count, d.negative_count
            );
        }
        // Duplicate subscriptions receive identical deltas from the
        // shared launch.
        let a = r.delta(alerts_team).expect("delta");
        let b = r.delta(audit_team).expect("delta");
        assert_eq!(a.positive_count, b.positive_count);
        assert_eq!(a.negative_count, b.negative_count);
    }

    // Unregistering one duplicate keeps the other subscription live.
    assert!(registry.unregister(audit_team));
    let r = registry.apply_batch(&deletes);
    assert!(r.delta(audit_team).is_none());
    assert!(r.delta(alerts_team).is_some());
    println!(
        "\nafter unregister: {} queries in {} groups",
        registry.num_queries(),
        registry.group_count()
    );

    // Per-subscription telemetry accumulates across the stream.
    let st = registry.stats(alerts_team).expect("stats");
    println!(
        "alerts telemetry: {} batches, {} positive / {} negative total",
        st.batches, st.positive_total, st.negative_total
    );
}
