//! VLSI netlist motif replacement — the introduction's third use case:
//! "in VLSI placement, engineers leverage subgraph matching to pinpoint
//! and replace areas that can be optimized".
//!
//! The netlist is a labeled graph of cells (NAND/NOR/INV/DFF); engineering
//! change orders (ECOs) arrive as batches of net edits. The optimizer
//! watches for a rewritable motif — an inverter pair feeding a NAND
//! (double negation that can be folded) — and uses the *negative* match
//! stream to confirm rewritten instances disappear after the ECO that
//! removes them.
//!
//! Run with: `cargo run --release --example vlsi_motif`

use gamma::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const NAND: u16 = 0;
const INV: u16 = 1;
const DFF: u16 = 2;

fn main() {
    let mut rng = StdRng::seed_from_u64(77);
    // A synthetic netlist: 1200 cells wired into a loose DAG-ish fabric.
    let mut g = DynamicGraph::new();
    let cells: Vec<u32> = (0..1200)
        .map(|i| {
            g.add_vertex(match i % 5 {
                0 | 1 => NAND,
                2 | 3 => INV,
                _ => DFF,
            })
        })
        .collect();
    for i in 0..cells.len() {
        for _ in 0..2 {
            let j = rng.random_range(0..cells.len());
            if i != j {
                g.insert_edge(cells[i], cells[j], NO_ELABEL);
            }
        }
    }
    println!(
        "netlist: {} cells, {} nets",
        g.num_vertices(),
        g.num_edges()
    );

    // Motif: INV -> INV -> NAND with a DFF consumer (4 cells).
    let mut b = QueryGraph::builder();
    let i1 = b.vertex(INV);
    let i2 = b.vertex(INV);
    let nd = b.vertex(NAND);
    let ff = b.vertex(DFF);
    b.edge(i1, i2).edge(i2, nd).edge(nd, ff);
    let motif = b.build();

    let mut engine = GammaEngine::new(g.clone(), &motif, GammaConfig::default());

    // ECO 1: wire a fresh double-inverter chain into the fabric.
    let (a, c, d, f) = (cells[2], cells[3], cells[0], cells[4]); // INV, INV, NAND, DFF
    let eco1 = vec![
        Update::insert(a, c),
        Update::insert(c, d),
        Update::insert(d, f),
    ];
    let r1 = engine.apply_batch(&eco1);
    println!(
        "ECO 1 (+{} nets): {} rewritable motif instance(s) appeared",
        eco1.len(),
        r1.positive_count
    );
    assert!(
        r1.positive.iter().any(|m| m.pairs().any(|(_, v)| v == a)),
        "the planted chain must be among the new instances"
    );

    // ECO 2: the optimizer folds the double negation — remove the INV-INV
    // net. Negative matches confirm which instances vanished.
    let eco2 = vec![Update::delete(a, c)];
    let r2 = engine.apply_batch(&eco2);
    println!(
        "ECO 2 (-{} net): {} motif instance(s) eliminated",
        eco2.len(),
        r2.negative_count
    );
    assert!(r2.negative_count >= 1);

    // ECO 3: a churny batch — add and remove the same net. BDSM nets it
    // out: no spurious alerts, no wasted optimization work.
    let eco3 = vec![Update::insert(a, c), Update::delete(a, c)];
    let r3 = engine.apply_batch(&eco3);
    println!(
        "ECO 3 (churn): {} net updates after canonicalization, {} alerts",
        r3.stats.net_updates, r3.positive_count
    );
    assert_eq!(r3.stats.net_updates, 0);
    assert_eq!(r3.positive_count, 0);

    println!("\nOK: motif appearance, elimination and churn suppression all verified.");
}
