//! Netflow-style monitoring with edge-labeled flows (the paper's NF
//! dataset shape: one vertex label, several highly skewed edge labels).
//!
//! Hosts are vertices; flows are edges labeled by protocol. The monitored
//! motif is a lateral-movement chain: an SSH hop followed by an RDP hop
//! followed by an exfiltration-sized HTTPS flow. Flow tables are windowed,
//! so every batch both inserts fresh flows and expires old ones — the
//! mixed-workload regime of Figure 11.
//!
//! Run with: `cargo run --release --example network_monitoring`

use gamma::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const HOST: u16 = 0;
const SSH: u16 = 1;
const RDP: u16 = 2;
const HTTPS: u16 = 3;
const DNS: u16 = 4;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);
    let n_hosts = 1500usize;
    let mut g = DynamicGraph::new();
    for _ in 0..n_hosts {
        g.add_vertex(HOST);
    }
    // Background traffic, protocol mix skewed toward DNS/HTTPS.
    let proto = |rng: &mut StdRng| -> u16 {
        match rng.random_range(0..10) {
            0 => SSH,
            1 => RDP,
            2..=5 => HTTPS,
            _ => DNS,
        }
    };
    for _ in 0..4000 {
        let u = rng.random_range(0..n_hosts) as u32;
        let v = rng.random_range(0..n_hosts) as u32;
        if u != v {
            let p = proto(&mut rng);
            g.insert_edge(u, v, p);
        }
    }
    println!(
        "flow graph: {} hosts, {} live flows",
        g.num_vertices(),
        g.num_edges()
    );

    // Motif: h0 -SSH-> h1 -RDP-> h2 -HTTPS-> h3 (undirected flows).
    let mut b = QueryGraph::builder();
    let h0 = b.vertex(HOST);
    let h1 = b.vertex(HOST);
    let h2 = b.vertex(HOST);
    let h3 = b.vertex(HOST);
    b.edge_labeled(h0, h1, SSH)
        .edge_labeled(h1, h2, RDP)
        .edge_labeled(h2, h3, HTTPS);
    let chain = b.build();

    let mut cfg = GammaConfig::default();
    cfg.device.warps_per_block = 16;
    let mut engine = GammaEngine::new(g, &chain, cfg);

    let mut window: Vec<(u32, u32)> = Vec::new();
    let mut alerts = 0u64;
    for tick in 1..=6 {
        let mut batch: Vec<Update> = Vec::new();
        // Expire the oldest window.
        for (u, v) in window.drain(..) {
            batch.push(Update::delete(u, v));
        }
        // Fresh flows.
        for _ in 0..300 {
            let u = rng.random_range(0..n_hosts) as u32;
            let v = rng.random_range(0..n_hosts) as u32;
            if u == v {
                continue;
            }
            let p = proto(&mut rng);
            batch.push(Update::insert_labeled(u, v, p));
            window.push((u, v));
        }
        // Tick 4 carries an attack chain.
        if tick == 4 {
            batch.push(Update::insert_labeled(10, 11, SSH));
            batch.push(Update::insert_labeled(11, 12, RDP));
            batch.push(Update::insert_labeled(12, 13, HTTPS));
            window.push((10, 11));
            window.push((11, 12));
            window.push((12, 13));
            println!("  (tick 4 carries a planted chain 10→11→12→13)");
        }

        let r = engine.apply_batch(&batch);
        alerts += r.positive_count;
        println!(
            "tick {tick}: {:>4} updates → {:>4} new chains, {:>4} expired chains \
             (device {:.2} sim-ms, preprocess {:.2} host-ms)",
            batch.len(),
            r.positive_count,
            r.negative_count,
            r.stats.device_seconds(engine.config().device.clock_ghz) * 1e3,
            r.stats.preprocess_seconds * 1e3,
        );
        if tick == 4 {
            let planted = r.positive.iter().any(|m| {
                let vs: Vec<u32> = m.pairs().map(|(_, v)| v).collect();
                vs.contains(&10) && vs.contains(&13)
            });
            assert!(planted, "planted chain must surface in its tick");
            println!("  >> lateral-movement chain detected");
        }
    }
    println!("\ntotal chain alerts: {alerts}");
}
