//! Sharded quickstart: the same batch-dynamic matching workload run on one
//! simulated device and on a 2-shard multi-device engine, side by side.
//!
//! The data graph is hash-partitioned across the shards: each device holds
//! the complete adjacency of its owned vertices plus the replicated
//! boundary frontier, updates are routed to the shards that store the
//! touched runs, and partial embeddings whose next expansion vertex lives
//! on the other device migrate through the inter-device stealing queue.
//! The reported incremental matches are **bit-identical** to the
//! single-device engine's — sharding changes where work runs, never what
//! is found.
//!
//! Run with: `cargo run --release --example sharded_quickstart`

use gamma::prelude::*;

fn main() {
    // A synthetic GitHub-shaped dataset, small enough to read the numbers.
    let dataset = DatasetPreset::GH.build(0.06, 7);
    let graph = dataset.graph;
    let queries = gamma::datasets::generate_queries(&graph, QueryClass::Sparse, 5, 1, 1234);
    let query = queries.first().expect("query extractable").clone();

    println!(
        "data graph: {} vertices, {} edges; query: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges(),
        query.num_vertices(),
        query.num_edges()
    );

    // A churn batch: delete 8% of live edges, then re-insert them.
    let deletes = gamma::datasets::sample_deletion_workload(&graph, 0.08, 99);
    let inserts: Vec<Update> = deletes
        .iter()
        .map(|u| {
            let label = graph.edge_label(u.u, u.v).expect("live edge");
            Update::insert_labeled(u.u, u.v, label)
        })
        .collect();

    // Single device.
    let mut single = GammaEngine::new(graph.clone(), &query, GammaConfig::default());

    // Two simulated devices, hash partition, inter-device stealing on.
    let config = ShardedConfig {
        base: GammaConfig::default(),
        num_shards: 2,
        strategy: PartitionStrategy::Hash,
        stealing: ShardStealing::Active,
        faults: None,
        query_id: 0,
    };
    let mut sharded = ShardedEngine::new(graph.clone(), &query, config);

    // Demonstrate the partition-aware routing helper on the raw stream:
    // the same owner rule the engine applies to kernel anchors.
    let partition = sharded.partition().clone();
    let routed = gamma::datasets::route_updates_by_owner(&deletes, partition.num_shards(), |v| {
        partition.owner(v)
    });
    println!(
        "update routing: {} deletions split {:?} across shards",
        deletes.len(),
        routed.iter().map(Vec::len).collect::<Vec<_>>()
    );

    for (name, batch) in [("delete", &deletes), ("re-insert", &inserts)] {
        let a = single.apply_batch(batch);
        let b = sharded.apply_batch(batch);
        println!(
            "\nbatch `{name}`: single device {}+ {}- | 2 shards {}+ {}-",
            a.positive_count, a.negative_count, b.positive_count, b.negative_count
        );
        assert_eq!(
            a.positive_count, b.positive_count,
            "positive deltas must agree"
        );
        assert_eq!(
            a.negative_count, b.negative_count,
            "negative deltas must agree"
        );
        let mut ap = a.positive.clone();
        let mut bp = b.positive.clone();
        ap.sort_unstable();
        bp.sort_unstable();
        assert_eq!(ap, bp, "positive match sets must be identical");
    }

    let stats = sharded.shard_stats();
    println!("\ncross-shard statistics:");
    println!("  embedding migrations: {}", stats.migrations);
    println!("  inter-device steals:  {}", stats.shard_steals);
    println!(
        "  migrant batches / drains: {} / {}",
        stats.migrant_batches, stats.drains
    );
    println!(
        "  inbox high water / phases: {} / {}",
        stats.inbox_high_water, stats.phases
    );
    println!("\nOK: 2-shard deltas bit-identical to the single device.");
}
