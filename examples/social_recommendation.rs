//! Social-network co-engagement: GAMMA vs a sequential CSM baseline on the
//! same batch, demonstrating the throughput gap the paper reports.
//!
//! The data graph is a scaled GitHub-shaped social graph
//! ([`DatasetPreset::GH`]); the query is a dense co-engagement motif
//! extracted from the graph itself (as in §VI-A). One 5% follow-batch is
//! pushed through (a) the GAMMA engine and (b) RapidFlow-lite applying the
//! same updates one at a time, and both the match sets and the wall-clock
//! are compared.
//!
//! Run with: `cargo run --release --example social_recommendation`

use std::time::Instant;

use gamma::csm::CsmEngine;
use gamma::prelude::*;

fn main() {
    let dataset = DatasetPreset::GH.build(1.5, 99);
    let mut g = dataset.graph.clone();
    println!(
        "social graph ({}-shaped): {} users, {} follows, avg degree {:.1}",
        dataset.name(),
        g.num_vertices(),
        g.num_edges(),
        g.avg_degree()
    );

    // A dense 5-vertex co-engagement motif extracted from the graph.
    let queries = gamma::datasets::generate_queries(&g, QueryClass::Dense, 5, 1, 5);
    let query = queries
        .into_iter()
        .next()
        .expect("GH-shaped graphs contain dense 5-vertex motifs");
    println!(
        "motif: {} vertices, {} edges (avg degree {:.1})",
        query.num_vertices(),
        query.num_edges(),
        query.avg_degree()
    );

    // A 5% batch of new follows (edges removed from the generated graph,
    // so they are distributionally real).
    let batch = gamma::datasets::split_insertion_workload(&mut g, 0.10, 1);
    println!("batch: {} follow events\n", batch.len());

    // GAMMA.
    let mut engine = GammaEngine::new(g.clone(), &query, GammaConfig::default());
    let t0 = Instant::now();
    let br = engine.apply_batch(&batch);
    let gamma_wall = t0.elapsed();

    // Sequential baseline.
    let mut rf = gamma::csm::RapidFlowLite::new(g.clone(), &query);
    let t0 = Instant::now();
    let seq = rf.apply_stream(&batch);
    let rf_wall = t0.elapsed();

    // Same recommendations?
    let mut a = br.positive.clone();
    a.sort_unstable();
    let mut b = seq.positive.clone();
    b.sort_unstable();
    b.dedup();
    assert_eq!(a, b, "batch and sequential must net out identically");

    println!("new co-engagement groups found: {}", br.positive_count);
    println!();
    println!(
        "GAMMA      : {:>9.2} ms wall  ({} warp tasks over {} blocks, util {:.0}%, {} steals)",
        gamma_wall.as_secs_f64() * 1e3,
        br.stats.kernel.num_tasks,
        br.stats.kernel.num_blocks,
        br.stats.kernel.utilization() * 100.0,
        br.stats.kernel.steals,
    );
    println!(
        "             {:>9.2} ms simulated device time",
        br.stats.device_seconds(engine.config().device.clock_ghz) * 1e3
    );
    println!(
        "RapidFlow  : {:>9.2} ms wall (sequential, one update at a time)",
        rf_wall.as_secs_f64() * 1e3
    );
    // The comparison the paper (and EXPERIMENTS.md) makes: simulated GPU
    // device time vs sequential CPU wall time. Host wall time of the
    // simulator is informational only — it runs warp-by-warp on however
    // many cores this machine has.
    let sim = br.stats.device_seconds(engine.config().device.clock_ghz);
    println!(
        "\nsimulated-GPU vs sequential-CPU speedup: {:.1}x",
        rf_wall.as_secs_f64() / sim.max(1e-12)
    );
}
