//! Differential test harness: every engine in the workspace must agree
//! with the exhaustive-enumeration oracle on every batch delta.
//!
//! Seeded dynamic workloads — dataset presets × query classes × batched
//! insert / delete / Zipf-skewed churn streams — are replayed through
//!
//! * [`GammaEngine`] under multiple `StealingMode`s,
//! * [`PipelinedEngine`] (asynchronous three-stage pipeline),
//! * [`ShardedEngine`] at 1, 2 and 4 simulated devices (hash and greedy
//!   partitions, both inter-device stealing modes — embedding migration
//!   and cross-shard stealing run under the same oracle as everything
//!   else), and
//! * the sequential CSM baselines (`TurboFluxLite`, `RapidFlowLite`),
//!
//! and after **every** batch each engine's positive/negative incremental
//! match sets must equal the snapshot diff `matches(G') − matches(G)` /
//! `matches(G) − matches(G')` computed by `enumerate_matches`. Engines are
//! long-lived across batches, so incremental state maintenance (dirty
//! vertex re-encoding, candidate index repair, GPMA updates) is what is
//! actually under test — exactly how GSI and the CSM papers validate
//! incremental deltas.

use std::collections::BTreeMap;

use gamma::csm::{CsmEngine, RapidFlowLite, TurboFluxLite};
use gamma::datasets::{
    sample_deletion_workload, split_insertion_workload, DatasetPreset, QueryClass, Zipf,
};
use gamma::engine::{
    GammaConfig, GammaEngine, PartitionStrategy, PipelinedEngine, ShardStealing, ShardedConfig,
    ShardedEngine, StealingMode,
};
use gamma::gpu::DeviceConfig;
use gamma::graph::{enumerate_matches, DynamicGraph, QueryGraph, Update, UpdateBatch, VMatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sorted, deduplicated full match set (the oracle's snapshot view).
fn all_matches(g: &DynamicGraph, q: &QueryGraph) -> Vec<VMatch> {
    let mut ms = enumerate_matches(g, q, None);
    ms.sort_unstable();
    ms.dedup();
    ms
}

/// Set difference `a − b` over sorted slices.
fn diff(a: &[VMatch], b: &[VMatch]) -> Vec<VMatch> {
    a.iter()
        .filter(|m| b.binary_search(m).is_err())
        .copied()
        .collect()
}

/// Sorts an engine's reported delta and rejects duplicates.
fn sorted_unique(mut ms: Vec<VMatch>, engine: &str, side: &str) -> Vec<VMatch> {
    ms.sort_unstable();
    assert!(
        ms.windows(2).all(|w| w[0] != w[1]),
        "{engine}: duplicate {side} matches reported"
    );
    ms
}

fn assert_delta(
    engine: &str,
    context: &str,
    got_pos: Vec<VMatch>,
    got_neg: Vec<VMatch>,
    want_pos: &[VMatch],
    want_neg: &[VMatch],
) {
    let got_pos = sorted_unique(got_pos, engine, "positive");
    let got_neg = sorted_unique(got_neg, engine, "negative");
    assert_eq!(
        got_pos, want_pos,
        "{engine} positive delta diverges from oracle at {context}"
    );
    assert_eq!(
        got_neg, want_neg,
        "{engine} negative delta diverges from oracle at {context}"
    );
}

/// One synchronous GAMMA engine variant under test.
struct GammaVariant {
    name: &'static str,
    engine: GammaEngine,
}

/// One sequential CSM baseline under test. Updates are fed one at a time
/// (the sequential regime) and per-update deltas are folded into a net
/// batch delta: a match created then destroyed inside one batch cancels,
/// matching the canonicalized semantics of Definition 1.
struct CsmVariant {
    name: &'static str,
    engine: Box<dyn CsmEngine>,
}

impl CsmVariant {
    fn apply_batch(&mut self, raw: &[Update]) -> (Vec<VMatch>, Vec<VMatch>) {
        let mut net: BTreeMap<VMatch, i32> = BTreeMap::new();
        for &u in raw {
            let r = self.engine.apply_update(u);
            for m in r.positive {
                *net.entry(m).or_default() += 1;
            }
            for m in r.negative {
                *net.entry(m).or_default() -= 1;
            }
        }
        for (m, c) in &net {
            assert!(
                c.abs() <= 1,
                "{}: match {m:?} net count {c} — an embedding flipped \
                 presence more often than its edges changed",
                self.name
            );
        }
        let pos = net
            .iter()
            .filter(|(_, &c)| c > 0)
            .map(|(m, _)| *m)
            .collect();
        let neg = net
            .iter()
            .filter(|(_, &c)| c < 0)
            .map(|(m, _)| *m)
            .collect();
        (pos, neg)
    }
}

fn gamma_config(stealing: StealingMode) -> GammaConfig {
    let mut cfg = GammaConfig {
        device: DeviceConfig::single_sm(),
        ..GammaConfig::default()
    };
    cfg.device.stealing = stealing;
    cfg.device.min_steal_hint = 2; // make stealing actually fire on small work
    cfg
}

/// Builds the batched workload for one `(dataset, query)` pair:
/// two insertion batches (edges removed from the generated graph, so the
/// insertions are distributionally real), one deletion batch over live
/// edges, and one Zipf-skewed churn batch mixing inserts and deletes on
/// hub-biased endpoints. Returns the start graph and the batch sequence.
fn build_workload(dataset: &mut DynamicGraph, seed: u64) -> Vec<Vec<Update>> {
    let mut batches = Vec::new();

    // Insertion stream: carve 12% of edges out of the graph and replay
    // them in two batches.
    let inserts = split_insertion_workload(dataset, 0.12, seed);
    let half = inserts.len().div_ceil(2).max(1);
    for chunk in inserts.chunks(half) {
        batches.push(chunk.to_vec());
    }

    // Deletion batch: sample 6% of the *current* (post-carve) live edges.
    // The replay below applies batches in order, so by the time this batch
    // runs the insertions have landed again; deleting edges that survived
    // the carve keeps every deletion valid regardless.
    let deletes = sample_deletion_workload(dataset, 0.06, seed ^ 0xdead);
    if !deletes.is_empty() {
        batches.push(deletes);
    }

    // Zipf-skewed churn: hub-biased random inserts/deletes, the skewed
    // update distribution of the paper's Figure 6 in miniature.
    let n = dataset.num_vertices();
    let zipf = Zipf::new(n, 0.9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut churn = Vec::new();
    while churn.len() < 24 {
        let u = zipf.sample(&mut rng) as u32;
        let v = zipf.sample(&mut rng) as u32;
        if u == v {
            continue;
        }
        if rng.random_bool(0.5) {
            churn.push(Update::insert(u, v));
        } else {
            churn.push(Update::delete(u, v));
        }
    }
    batches.push(churn);
    batches
}

/// The harness core: replays `batches` through every engine, checking each
/// batch delta against the oracle.
fn run_differential(
    preset: DatasetPreset,
    class: QueryClass,
    scale: f64,
    query_size: usize,
    seed: u64,
) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let mut batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));

    let queries = gamma::datasets::generate_queries(&start, class, query_size, 1, seed ^ 0x51_f1ed);
    let Some(q) = queries.first() else {
        panic!(
            "no {} query of size {query_size} extractable from preset {} at scale {scale} — \
             widen the generator parameters",
            class.name(),
            preset.name()
        );
    };

    // Targeted churn, replayed first: delete an edge from each of a few
    // *actual* embeddings (guaranteed negative deltas), then restore those
    // edges with their original labels (guaranteed positive deltas). This
    // keeps the harness non-vacuous even when the random workload misses
    // the handful of embeddings a label-rich preset admits.
    let seed_matches = all_matches(&start, q);
    let mut kill = Vec::new();
    let mut restore = Vec::new();
    let mut targeted = std::collections::BTreeSet::new();
    for m in seed_matches.iter().take(4) {
        let e = q.edges().first().expect("non-empty query");
        let (du, dv) = (
            m.get(e.u).expect("complete match"),
            m.get(e.v).expect("complete match"),
        );
        let label = start.edge_label(du, dv).expect("match uses live edge");
        if targeted.insert((du.min(dv), du.max(dv))) {
            kill.push(Update::delete(du, dv));
            restore.push(Update::insert_labeled(du, dv, label));
        }
    }
    if !kill.is_empty() {
        batches.insert(0, restore);
        batches.insert(0, kill);
    }

    // Engines under test, all starting from the same snapshot.
    let mut gammas = vec![
        GammaVariant {
            name: "gamma[steal=off]",
            engine: GammaEngine::new(start.clone(), q, gamma_config(StealingMode::Off)),
        },
        GammaVariant {
            name: "gamma[steal=active]",
            engine: GammaEngine::new(start.clone(), q, gamma_config(StealingMode::Active)),
        },
        GammaVariant {
            name: "gamma[steal=passive]",
            engine: GammaEngine::new(start.clone(), q, gamma_config(StealingMode::Passive)),
        },
    ];
    let mut csms = vec![
        CsmVariant {
            name: "turboflux",
            engine: Box::new(TurboFluxLite::new(start.clone(), q)),
        },
        CsmVariant {
            name: "rapidflow",
            engine: Box::new(RapidFlowLite::new(start.clone(), q)),
        },
    ];
    let mut pipeline = PipelinedEngine::new(
        start.clone(),
        q,
        gamma_config(StealingMode::Active),
        2, // double-buffered: preprocessing genuinely overlaps device work
    );
    let mut shardeds: Vec<(String, ShardedEngine)> = [1usize, 2, 4]
        .iter()
        .map(|&n| {
            let cfg = ShardedConfig {
                base: gamma_config(StealingMode::Active),
                num_shards: n,
                strategy: PartitionStrategy::Hash,
                stealing: ShardStealing::Active,
                faults: None,
                query_id: 0,
            };
            (
                format!("sharded[{n}]"),
                ShardedEngine::new(start.clone(), q, cfg),
            )
        })
        .collect();
    // Locality-aware partition cells: same oracle, greedy placement.
    for (n, stealing) in [(2usize, ShardStealing::Off), (4, ShardStealing::Active)] {
        let cfg = ShardedConfig {
            base: gamma_config(StealingMode::Active),
            num_shards: n,
            strategy: PartitionStrategy::Greedy,
            stealing,
            faults: None,
            query_id: 0,
        };
        shardeds.push((
            format!("sharded-greedy[{n}]"),
            ShardedEngine::new(start.clone(), q, cfg),
        ));
    }

    let mut host = start;
    let mut before = all_matches(&host, q);
    let mut total_delta = 0usize;
    for (i, raw) in batches.iter().enumerate() {
        let context = format!(
            "preset {} / class {} / batch {i} ({} updates)",
            preset.name(),
            class.name(),
            raw.len()
        );

        // Oracle: canonicalized snapshot diff.
        let batch = UpdateBatch::canonicalize(&host, raw);
        batch.apply(&mut host);
        let after = all_matches(&host, q);
        let want_pos = diff(&after, &before);
        let want_neg = diff(&before, &after);
        total_delta += want_pos.len() + want_neg.len();

        for v in &mut gammas {
            let r = v.engine.apply_batch(raw);
            assert_eq!(
                r.positive_count,
                want_pos.len() as u64,
                "{} positive_count at {context}",
                v.name
            );
            assert_eq!(
                r.negative_count,
                want_neg.len() as u64,
                "{} negative_count at {context}",
                v.name
            );
            assert_delta(
                v.name, &context, r.positive, r.negative, &want_pos, &want_neg,
            );
            assert_eq!(
                v.engine.graph().num_edges(),
                host.num_edges(),
                "{} host mirror drifted at {context}",
                v.name
            );
        }

        for (name, engine) in &mut shardeds {
            let r = engine.apply_batch(raw);
            assert_eq!(
                r.positive_count,
                want_pos.len() as u64,
                "{name} positive_count at {context}"
            );
            assert_eq!(
                r.negative_count,
                want_neg.len() as u64,
                "{name} negative_count at {context}"
            );
            assert_delta(name, &context, r.positive, r.negative, &want_pos, &want_neg);
            assert_eq!(
                engine.graph().num_edges(),
                host.num_edges(),
                "{name} host mirror drifted at {context}"
            );
        }

        let seq = pipeline.submit(raw.clone());
        let out = pipeline.recv().expect("pipeline alive");
        assert_eq!(out.seq, seq, "pipeline must deliver in submission order");
        assert_delta(
            "pipelined",
            &context,
            out.result.positive,
            out.result.negative,
            &want_pos,
            &want_neg,
        );

        for c in &mut csms {
            let (pos, neg) = c.apply_batch(raw);
            assert_delta(c.name, &context, pos, neg, &want_pos, &want_neg);
            assert_eq!(
                c.engine.graph().num_edges(),
                host.num_edges(),
                "{} graph drifted at {context}",
                c.name
            );
        }

        before = after;
    }
    drop(pipeline.finish());
    // Guard against a vacuous replay: the workloads above must actually
    // create and destroy matches, or the agreement checks prove nothing.
    assert!(
        total_delta > 0,
        "workload for preset {} / class {} produced no match deltas — \
         harness has gone vacuous",
        preset.name(),
        class.name()
    );
}

// ---------------------------------------------------------------------------
// The preset × class matrix. Three presets (GH dense-ish 5-label, AZ
// mid-density 6-label, ST 25-label) × all three query classes, plus an
// edge-labeled preset as a fourth corner. Scales are chosen so the oracle
// stays exhaustive in well under a second per batch.
// ---------------------------------------------------------------------------

#[test]
fn differential_gh_dense() {
    run_differential(DatasetPreset::GH, QueryClass::Dense, 0.04, 4, 101);
}

#[test]
fn differential_gh_sparse() {
    run_differential(DatasetPreset::GH, QueryClass::Sparse, 0.04, 5, 102);
}

#[test]
fn differential_gh_tree() {
    run_differential(DatasetPreset::GH, QueryClass::Tree, 0.04, 5, 103);
}

#[test]
fn differential_az_dense() {
    run_differential(DatasetPreset::AZ, QueryClass::Dense, 0.03, 4, 104);
}

#[test]
fn differential_az_sparse() {
    run_differential(DatasetPreset::AZ, QueryClass::Sparse, 0.03, 5, 105);
}

#[test]
fn differential_az_tree() {
    run_differential(DatasetPreset::AZ, QueryClass::Tree, 0.03, 5, 106);
}

#[test]
fn differential_st_dense() {
    // Seed picked so the extracted dense query has enough embeddings for
    // the workload to actually churn them (ST is label-rich, so dense
    // 4-cliques with matching label sequences are rare at small scale).
    run_differential(DatasetPreset::ST, QueryClass::Dense, 0.03, 4, 106);
}

#[test]
fn differential_st_sparse() {
    run_differential(DatasetPreset::ST, QueryClass::Sparse, 0.02, 5, 108);
}

#[test]
fn differential_st_tree() {
    run_differential(DatasetPreset::ST, QueryClass::Tree, 0.02, 5, 109);
}

/// Edge-labeled corner: the NF shape (single vertex label, 7 edge labels)
/// exercises edge-label matching through the whole stack.
#[test]
fn differential_nf_edge_labeled() {
    run_differential(DatasetPreset::NF, QueryClass::Tree, 0.03, 4, 110);
}
