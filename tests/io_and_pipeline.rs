//! Integration tests for the I/O formats and the asynchronous pipeline on
//! dataset-scale workloads, plus metrics validation of the preset shapes.

use gamma::engine::PipelinedEngine;
use gamma::graph::io;
use gamma::graph::{metrics, CsrGraph};
use gamma::prelude::*;

#[test]
fn dataset_roundtrips_through_text_format() {
    let d = DatasetPreset::NF.build(0.1, 61);
    let mut buf = Vec::new();
    io::write_graph(&d.graph, &mut buf).unwrap();
    let g2 = io::read_graph(&buf[..]).unwrap();
    assert_eq!(g2.num_vertices(), d.graph.num_vertices());
    assert_eq!(g2.num_edges(), d.graph.num_edges());
    for (u, v, l) in d.graph.edges() {
        assert_eq!(g2.edge_label(u, v), Some(l));
    }

    // Queries and update streams too.
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Tree, 5, 2, 62);
    for q in &queries {
        let mut qb = Vec::new();
        io::write_query(q, &mut qb).unwrap();
        let q2 = io::read_query(&qb[..]).unwrap();
        assert_eq!(q2.edges(), q.edges());
        assert_eq!(q2.labels(), q.labels());
    }
    let mut g = d.graph.clone();
    let ups = gamma::datasets::mixed_workload(&mut g, 0.05, 63);
    let mut ub = Vec::new();
    io::write_updates(&ups, &mut ub).unwrap();
    assert_eq!(io::read_updates(&ub[..]).unwrap(), ups);
}

#[test]
fn preset_metrics_match_table2_shapes() {
    // The generators must actually deliver the shape parameters DESIGN.md
    // promises (Table II analogues).
    let checks = [
        (DatasetPreset::GH, 15.3, 5usize, 1usize),
        (DatasetPreset::NF, 2.0, 1, 7),
        (DatasetPreset::LS, 8.2, 1, 44),
    ];
    for (preset, avg_deg, vlabels, elabels) in checks {
        let d = preset.build(0.3, 64);
        let m = metrics(&d.graph);
        assert!(
            (m.avg_degree - avg_deg).abs() < 0.3,
            "{}: avg degree {} vs {}",
            preset.name(),
            m.avg_degree,
            avg_deg
        );
        assert!(m.label_histogram.len() <= vlabels, "{}", preset.name());
        assert!(m.edge_label_histogram.len() <= elabels, "{}", preset.name());
        // Power-law skew present: hubs well above average.
        assert!(
            m.max_degree as f64 > 3.0 * m.avg_degree,
            "{}",
            preset.name()
        );
        assert!(
            m.degree_gini > 0.2,
            "{}: gini {}",
            preset.name(),
            m.degree_gini
        );
    }
}

#[test]
fn csr_snapshot_agrees_with_dynamic_on_dataset() {
    let d = DatasetPreset::AZ.build(0.1, 65);
    let csr = CsrGraph::from_dynamic(&d.graph);
    assert_eq!(csr.num_edges(), d.graph.num_edges());
    for v in (0..d.graph.num_vertices() as u32).step_by(37) {
        let dyn_n: Vec<u32> = d.graph.neighbors(v).iter().map(|&(n, _)| n).collect();
        assert_eq!(csr.neighbors(v), &dyn_n[..]);
        assert_eq!(csr.degree(v), d.graph.degree(v));
    }
}

#[test]
fn pipeline_processes_a_batch_stream_on_dataset() {
    let d = DatasetPreset::GH.build(0.06, 66);
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Sparse, 5, 1, 67);
    let q = &queries[0];

    // Build a stream of three disjoint insertion batches by carving edges
    // off the generated graph.
    let mut g0 = d.graph.clone();
    let b1 = gamma::datasets::split_insertion_workload(&mut g0, 0.04, 1);
    let mut g1 = g0.clone();
    let b2 = gamma::datasets::split_insertion_workload(&mut g1, 0.04, 2);
    let mut g2 = g1.clone();
    let b3 = gamma::datasets::split_insertion_workload(&mut g2, 0.04, 3);
    // Stream order restores them: g2 + b3 -> g1, + b2 -> g0, + b1 -> full.
    let stream = [b3, b2, b1];

    // Synchronous reference.
    let mut sync_engine = GammaEngine::new(g2.clone(), q, GammaConfig::default());
    let sync_counts: Vec<u64> = stream
        .iter()
        .map(|b| sync_engine.apply_batch(b).positive_count)
        .collect();

    // Pipelined.
    let mut pipe = PipelinedEngine::new(g2, q, GammaConfig::default(), 2);
    for b in &stream {
        pipe.submit(b.clone());
    }
    let outs = pipe.finish();
    assert_eq!(outs.len(), 3);
    for (i, out) in outs.iter().enumerate() {
        assert_eq!(out.seq, i as u64);
        assert_eq!(
            out.result.positive_count, sync_counts[i],
            "batch {i} count divergence"
        );
    }
    // The final graph state equals the original dataset graph.
    assert_eq!(sync_engine.graph().num_edges(), d.graph.num_edges());
}
