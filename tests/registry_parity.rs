//! Registry parity gate: K registered standing queries must produce
//! per-query delta streams identical to K independent engine runs.
//!
//! Every preset × workload cell of the differential matrix replays the
//! same batched insert / delete / Zipf-churn workloads through
//!
//! * one [`QueryRegistry`] holding K subscriptions (mixed query classes
//!   plus duplicate subscriptions, so both singleton launches and
//!   grouped shared-prefix launches are exercised), against K dedicated
//!   [`GammaEngine`]s — batch by batch, counts and sorted-unique match
//!   sets must agree exactly; and
//! * one [`ShardedQueryRegistry`] at 2 and 4 simulated devices against
//!   per-subscription dedicated [`ShardedEngine`]s.
//!
//! The independent engines are themselves pinned to the enumeration
//! oracle by `tests/differential.rs`, so agreement here closes the chain
//! registry = engines = oracle without paying for a third enumeration.

use gamma::datasets::{generate_queries, DatasetPreset, QueryClass, Zipf};
use gamma::engine::registry::{QueryConfig, QueryRegistry, ShardedQueryRegistry};
use gamma::engine::{
    GammaConfig, GammaEngine, PartitionStrategy, ShardStealing, ShardedConfig, ShardedEngine,
    StealingMode,
};
use gamma::gpu::DeviceConfig;
use gamma::graph::{DynamicGraph, QueryGraph, Update, VMatch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn sorted_unique(mut ms: Vec<VMatch>, who: &str, side: &str) -> Vec<VMatch> {
    ms.sort_unstable();
    assert!(
        ms.windows(2).all(|w| w[0] != w[1]),
        "{who}: duplicate {side} matches reported"
    );
    ms
}

fn gamma_config() -> GammaConfig {
    let mut cfg = GammaConfig {
        device: DeviceConfig::single_sm(),
        ..GammaConfig::default()
    };
    cfg.device.stealing = StealingMode::Active;
    cfg.device.min_steal_hint = 2;
    cfg
}

/// Same workload shape as `tests/differential.rs`: two insertion batches
/// carved out of the generated graph, one deletion batch, one Zipf-skewed
/// churn batch.
fn build_workload(dataset: &mut DynamicGraph, seed: u64) -> Vec<Vec<Update>> {
    let mut batches = Vec::new();
    let inserts = gamma::datasets::split_insertion_workload(dataset, 0.12, seed);
    let half = inserts.len().div_ceil(2).max(1);
    for chunk in inserts.chunks(half) {
        batches.push(chunk.to_vec());
    }
    let deletes = gamma::datasets::sample_deletion_workload(dataset, 0.06, seed ^ 0xdead);
    if !deletes.is_empty() {
        batches.push(deletes);
    }
    let n = dataset.num_vertices();
    let zipf = Zipf::new(n, 0.9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut churn = Vec::new();
    while churn.len() < 24 {
        let u = zipf.sample(&mut rng) as u32;
        let v = zipf.sample(&mut rng) as u32;
        if u == v {
            continue;
        }
        if rng.random_bool(0.5) {
            churn.push(Update::insert(u, v));
        } else {
            churn.push(Update::delete(u, v));
        }
    }
    batches.push(churn);
    batches
}

/// Distinct patterns of mixed classes extractable from `g`.
fn mixed_queries(g: &DynamicGraph, seed: u64) -> Vec<QueryGraph> {
    let mut qs: Vec<QueryGraph> = Vec::new();
    for (class, size) in [
        (QueryClass::Dense, 4),
        (QueryClass::Sparse, 5),
        (QueryClass::Tree, 5),
    ] {
        for q in generate_queries(g, class, size, 2, seed ^ 0x51_f1ed) {
            if !qs.contains(&q) {
                qs.push(q);
            }
        }
    }
    assert!(
        qs.len() >= 2,
        "need at least two distinct patterns for a meaningful registry cell"
    );
    qs
}

fn run_registry_parity(preset: DatasetPreset, k: usize, scale: f64, seed: u64) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));
    let qs = mixed_queries(&start, seed);

    // K subscriptions cycling the distinct patterns: with k > distinct
    // patterns, duplicates guarantee grouped (shared-prefix) launches.
    let subs: Vec<&QueryGraph> = (0..k).map(|i| &qs[i % qs.len()]).collect();

    let mut reg = QueryRegistry::new(start.clone(), gamma_config());
    let ids: Vec<_> = subs
        .iter()
        .map(|q| reg.register(q, QueryConfig::default()))
        .collect();
    let mut engines: Vec<GammaEngine> = subs
        .iter()
        .map(|q| GammaEngine::new(start.clone(), q, gamma_config()))
        .collect();

    if k > qs.len() {
        assert!(
            reg.group_count() < reg.num_queries(),
            "duplicate subscriptions must share a group — sharing has gone vacuous"
        );
    }

    let mut total_delta = 0u64;
    for (bi, raw) in batches.iter().enumerate() {
        let r = reg.apply_batch(raw);
        assert_eq!(r.deltas.len(), k);
        for (i, id) in ids.iter().enumerate() {
            let context = format!("preset {} / k={k} / sub {i} / batch {bi}", preset.name());
            let d = r.delta(*id).expect("registered id has a delta");
            let e = engines[i].apply_batch(raw);
            assert_eq!(
                d.positive_count, e.positive_count,
                "positive_count diverges at {context}"
            );
            assert_eq!(
                d.negative_count, e.negative_count,
                "negative_count diverges at {context}"
            );
            let ctx = &context;
            assert_eq!(
                sorted_unique(d.positive.clone(), "registry", "positive"),
                sorted_unique(e.positive.clone(), "engine", "positive"),
                "positive delta diverges at {ctx}"
            );
            assert_eq!(
                sorted_unique(d.negative.clone(), "registry", "negative"),
                sorted_unique(e.negative.clone(), "engine", "negative"),
                "negative delta diverges at {ctx}"
            );
            total_delta += d.positive_count + d.negative_count;
        }
        assert_eq!(
            reg.graph().num_edges(),
            engines[0].graph().num_edges(),
            "registry host mirror drifted at batch {bi}"
        );
    }
    assert!(
        total_delta > 0,
        "preset {} produced no registry deltas — parity cell has gone vacuous",
        preset.name()
    );
    // Telemetry sanity: every query saw every batch and its totals add up.
    for id in &ids {
        let st = reg.stats(*id).expect("registered id has stats");
        assert_eq!(st.batches, batches.len() as u64);
    }
}

fn run_sharded_registry_parity(preset: DatasetPreset, scale: f64, seed: u64) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));
    let qs = mixed_queries(&start, seed);
    // Every distinct pattern plus one duplicate of the first: exercises
    // both the identity-class dedup (one engine, two subscribers) and
    // multi-class fan-out, at both shard counts.
    let mut subs: Vec<&QueryGraph> = qs.iter().collect();
    subs.push(&qs[0]);

    for num_shards in [2usize, 4] {
        let cfg = ShardedConfig {
            base: gamma_config(),
            num_shards,
            strategy: PartitionStrategy::Hash,
            stealing: ShardStealing::Active,
            faults: None,
            query_id: 0,
        };
        let mut reg = ShardedQueryRegistry::new(start.clone(), cfg.clone());
        let ids: Vec<_> = subs.iter().map(|q| reg.register(q)).collect();
        assert_eq!(reg.num_queries(), subs.len());
        assert_eq!(
            reg.group_count(),
            qs.len(),
            "identical patterns must share an engine"
        );
        let mut engines: Vec<ShardedEngine> = subs
            .iter()
            .map(|q| ShardedEngine::new(start.clone(), q, cfg.clone()))
            .collect();

        let mut total_delta = 0u64;
        for (bi, raw) in batches.iter().enumerate() {
            let r = reg.apply_batch(raw);
            for (i, id) in ids.iter().enumerate() {
                let context = format!(
                    "preset {} / SHARD{num_shards} / sub {i} / batch {bi}",
                    preset.name()
                );
                let d = r.delta(*id).expect("registered id has a delta");
                let e = engines[i].apply_batch(raw);
                assert_eq!(
                    d.positive_count, e.positive_count,
                    "positive_count diverges at {context}"
                );
                assert_eq!(
                    d.negative_count, e.negative_count,
                    "negative_count diverges at {context}"
                );
                assert_eq!(
                    sorted_unique(d.positive.clone(), "sharded-registry", "positive"),
                    sorted_unique(e.positive.clone(), "sharded-engine", "positive"),
                    "positive delta diverges at {context}"
                );
                assert_eq!(
                    sorted_unique(d.negative.clone(), "sharded-registry", "negative"),
                    sorted_unique(e.negative.clone(), "sharded-engine", "negative"),
                    "negative delta diverges at {context}"
                );
                total_delta += d.positive_count + d.negative_count;
            }
        }
        assert!(
            total_delta > 0,
            "preset {} SHARD{num_shards} produced no deltas — cell has gone vacuous",
            preset.name()
        );
    }
}

/// Register/unregister mid-stream: subscriptions come and go between
/// batches; every live subscription must still track a dedicated engine
/// spawned from the registry's graph at its registration point.
fn run_midstream_churn(preset: DatasetPreset, scale: f64, seed: u64) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));
    let qs = mixed_queries(&start, seed);

    let mut reg = QueryRegistry::new(start.clone(), gamma_config());
    let mut live: Vec<(gamma::engine::registry::QueryId, GammaEngine)> = Vec::new();
    let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);

    // Start with two subscriptions; churn the set between batches.
    for i in 0..2 {
        let q = &qs[i % qs.len()];
        let id = reg.register(q, QueryConfig::default());
        live.push((id, GammaEngine::new(start.clone(), q, gamma_config())));
    }

    for (bi, raw) in batches.iter().enumerate() {
        let r = reg.apply_batch(raw);
        for (id, engine) in &mut live {
            let d = r.delta(*id).expect("live id has a delta");
            let e = engine.apply_batch(raw);
            assert_eq!(
                d.positive_count, e.positive_count,
                "positive_count diverges at batch {bi} (mid-stream churn)"
            );
            assert_eq!(
                sorted_unique(d.positive.clone(), "registry", "positive"),
                sorted_unique(e.positive.clone(), "engine", "positive"),
                "positive delta diverges at batch {bi} (mid-stream churn)"
            );
            assert_eq!(
                sorted_unique(d.negative.clone(), "registry", "negative"),
                sorted_unique(e.negative.clone(), "engine", "negative"),
                "negative delta diverges at batch {bi} (mid-stream churn)"
            );
        }

        // Churn: maybe drop one subscription, maybe add one — the new
        // engine starts from the registry's *current* graph.
        if live.len() > 1 && rng.random_bool(0.4) {
            let victim = rng.random_range(0..live.len());
            let (id, _) = live.remove(victim);
            assert!(reg.unregister(id));
            let r2 = reg.apply_batch(&[]);
            assert!(r2.delta(id).is_none(), "unregistered id must stop routing");
        }
        if rng.random_bool(0.6) {
            let q = &qs[rng.random_range(0..qs.len())];
            let id = reg.register(q, QueryConfig::default());
            live.push((id, GammaEngine::new(reg.graph().clone(), q, gamma_config())));
        }
    }
    assert!(!live.is_empty());
}

// ---------------------------------------------------------------------------
// The preset × class matrix, mirroring tests/differential.rs. K = 8
// everywhere (4+ distinct mixed-class patterns × duplicates); the GH dense
// corner additionally pins K = 2 and K = 32, and every preset gets a
// SHARD2/4 sharded-registry cell.
// ---------------------------------------------------------------------------

#[test]
fn registry_parity_gh_k2() {
    run_registry_parity(DatasetPreset::GH, 2, 0.04, 101);
}

#[test]
fn registry_parity_gh_k8() {
    run_registry_parity(DatasetPreset::GH, 8, 0.04, 101);
}

#[test]
fn registry_parity_gh_k32() {
    run_registry_parity(DatasetPreset::GH, 32, 0.04, 101);
}

#[test]
fn registry_parity_az_k8() {
    run_registry_parity(DatasetPreset::AZ, 8, 0.03, 104);
}

#[test]
fn registry_parity_st_k8() {
    run_registry_parity(DatasetPreset::ST, 8, 0.02, 108);
}

#[test]
fn registry_parity_nf_edge_labeled_k8() {
    run_registry_parity(DatasetPreset::NF, 8, 0.03, 110);
}

#[test]
fn sharded_registry_parity_gh() {
    run_sharded_registry_parity(DatasetPreset::GH, 0.04, 101);
}

#[test]
fn sharded_registry_parity_az() {
    run_sharded_registry_parity(DatasetPreset::AZ, 0.03, 104);
}

#[test]
fn sharded_registry_parity_st() {
    run_sharded_registry_parity(DatasetPreset::ST, 0.02, 108);
}

#[test]
fn sharded_registry_parity_nf() {
    run_sharded_registry_parity(DatasetPreset::NF, 0.03, 110);
}

#[test]
fn registry_midstream_churn_gh() {
    run_midstream_churn(DatasetPreset::GH, 0.04, 101);
}

#[test]
fn registry_midstream_churn_az() {
    run_midstream_churn(DatasetPreset::AZ, 0.03, 104);
}
