//! Cross-crate integration tests: GAMMA vs the CSM baselines vs the
//! oracle, on generated datasets, exercising the full public API surface
//! through the `gamma` façade.

use gamma::engine::wbm::QueryMeta;
use gamma::graph::{enumerate_matches, UpdateBatch};
use gamma::prelude::*;

/// Canonicalized-batch equivalence: GAMMA's batch output must equal the
/// *net* effect that any baseline reaches by sequential application,
/// modulo the churn redundancy BDSM eliminates (Example 1).
#[test]
fn gamma_equals_net_of_sequential_csm() {
    let d = DatasetPreset::GH.build(0.05, 41);
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Sparse, 5, 2, 7);
    for q in &queries {
        let mut g = d.graph.clone();
        let ups = gamma::datasets::split_insertion_workload(&mut g, 0.08, 3);

        // GAMMA batch.
        let mut engine = GammaEngine::new(g.clone(), q, Default::default());
        let batch_result = engine.apply_batch(&ups);
        let mut gamma_pos = batch_result.positive.clone();
        gamma_pos.sort_unstable();

        // Sequential RapidFlow-lite.
        let mut rf = gamma::csm::RapidFlowLite::new(g.clone(), q);
        let seq = rf.apply_stream(&ups);
        let mut seq_pos = seq.positive;
        seq_pos.sort_unstable();
        seq_pos.dedup();

        // Insert-only batches have no churn: sets must agree exactly.
        assert_eq!(gamma_pos, seq_pos, "query {:?}", q.edges());
    }
}

/// On a churny stream, sequential CSM emits transient matches that BDSM's
/// canonicalization avoids — the quantitative content of Example 1.
#[test]
fn bdsm_avoids_churn_redundancy() {
    let mut g = DynamicGraph::new();
    for &l in &[0u16, 0, 1, 1, 1, 1, 1, 2, 2, 2] {
        g.add_vertex(l);
    }
    for &(u, v) in &[
        (0, 3),
        (0, 4),
        (2, 3),
        (2, 4),
        (3, 7),
        (2, 8),
        (1, 5),
        (1, 6),
        (5, 6),
        (5, 9),
        (4, 7),
        (4, 5),
    ] {
        g.insert_edge(u, v, NO_ELABEL);
    }
    let mut b = QueryGraph::builder();
    let (u0, u1, u2, u3) = (b.vertex(0), b.vertex(1), b.vertex(1), b.vertex(2));
    b.edge(u0, u1).edge(u0, u2).edge(u1, u2).edge(u1, u3);
    let q = b.build();

    let stream = [
        Update::insert(0, 2),
        Update::insert(1, 4),
        Update::delete(4, 5),
    ];

    let mut engine = GammaEngine::new(g.clone(), &q, Default::default());
    let br = engine.apply_batch(&stream);

    let mut gf = gamma::csm::GraphflowLite::new(g, &q);
    let seq = gf.apply_stream(&stream);

    // CSM's total incremental output strictly exceeds BDSM's net output.
    let csm_total = seq.positive.len() + seq.negative.len();
    let bdsm_total = (br.positive_count + br.negative_count) as usize;
    assert!(
        csm_total > bdsm_total,
        "csm {csm_total} vs bdsm {bdsm_total}"
    );
    // And the net state agrees: before + pos - neg == matches(after).
    assert_eq!(
        engine.graph().num_edges(),
        gf.graph().num_edges(),
        "both pipelines end on the same graph"
    );
}

/// The GPMA device store and the host mirror never diverge across batches.
#[test]
fn gpma_mirror_consistency_over_batches() {
    use gamma::gpma::{Gpma, GpmaConfig};
    let d = DatasetPreset::NF.build(0.08, 43);
    let mut g = d.graph.clone();
    let mut pma = Gpma::from_graph(&g, GpmaConfig::default());
    for round in 0..5u64 {
        let ins = gamma::datasets::split_insertion_workload(&mut g, 0.05, round);
        // g currently lacks `ins`; apply to both sides.
        let triples: Vec<(u32, u32, u16)> = ins.iter().map(|u| (u.u, u.v, u.label)).collect();
        pma.delete_edges(&ins.iter().map(|u| (u.u, u.v)).collect::<Vec<_>>());
        pma.assert_consistent();
        let inserted = pma.insert_edges(&triples);
        for up in &ins {
            g.insert_edge(up.u, up.v, up.label);
        }
        assert_eq!(inserted, triples.len());
        assert_eq!(pma.num_edges(), g.num_edges(), "round {round}");
        pma.assert_consistent();
    }
}

/// Coalesced-search planning finds classes on symmetric queries extracted
/// from real datasets, and the engine stays correct with them.
#[test]
fn coalesced_plans_on_dataset_queries() {
    let d = DatasetPreset::AZ.build(0.08, 44);
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Dense, 5, 4, 11);
    let mut any_class = false;
    for q in &queries {
        let (enc, table) = gamma::engine::IncrementalEncoder::build(&d.graph, q, 2);
        let meta = QueryMeta::build(q, &table, enc.scheme(), true, 2);
        any_class |= !meta.plan.classes.is_empty();
        // Seeds + skipped members together cover every query edge.
        let covered: usize = meta.seeds.len()
            + meta
                .plan
                .classes
                .iter()
                .map(|c| c.members.len())
                .sum::<usize>();
        assert_eq!(covered, q.num_edges());
    }
    // Dense unlabeled-ish extracted queries almost always have symmetry;
    // if none had, the planner would be suspect.
    assert!(
        any_class,
        "no automorphic structure found in any dense query"
    );
}

/// End-to-end shape check: on the skewed star workload, work stealing
/// improves utilization and (simulated) makespan.
#[test]
fn stealing_helps_on_skewed_star() {
    let (g, ups, q) = gamma::datasets::skewed_star_workload(2, 400);
    let run = |steal: gamma::engine::StealingMode| {
        let mut cfg = gamma::engine::GammaConfig::default();
        cfg.device.stealing = steal;
        cfg.device.num_sms = 1;
        cfg.device.warps_per_block = 8;
        cfg.device.min_steal_hint = 8;
        cfg.collect_matches = false;
        let mut engine = GammaEngine::new(g.clone(), &q, cfg);
        let r = engine.apply_batch(&ups);
        (
            r.positive_count,
            r.stats.kernel.device_cycles,
            r.stats.kernel.utilization(),
            r.stats.kernel.steals,
        )
    };
    let (count_off, cycles_off, util_off, steals_off) = run(StealingMode::Off);
    let (count_on, cycles_on, util_on, steals_on) = run(StealingMode::Active);
    assert_eq!(count_off, count_on, "stealing must not change results");
    assert_eq!(steals_off, 0);
    assert!(steals_on > 0, "skewed star must trigger steals");
    assert!(
        cycles_on < cycles_off,
        "stealing should cut makespan: {cycles_on} !< {cycles_off}"
    );
    assert!(util_on > util_off, "utilization: {util_on} !> {util_off}");
}

/// The BFS kernel variant agrees with the DFS engine on match counts while
/// burning more memory (Figure 5's premise).
#[test]
fn bfs_variant_agrees_with_dfs() {
    use gamma::engine::{run_bfs_phase, IncrementalEncoder};
    use gamma::gpma::{Gpma, GpmaConfig};
    use gamma::gpu::CostModel;

    let d = DatasetPreset::GH.build(0.04, 45);
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Sparse, 4, 2, 13);
    for q in &queries {
        let mut g = d.graph.clone();
        let ups = gamma::datasets::split_insertion_workload(&mut g, 0.06, 5);

        // DFS engine (no coalesced search, to match BFS's seed coverage).
        let mut cfg = gamma::engine::GammaConfig::default();
        cfg.coalesced_search = false;
        cfg.collect_matches = false;
        let mut engine = GammaEngine::new(g.clone(), q, cfg);
        let dfs_count = engine.apply_batch(&ups).positive_count;

        // BFS variant on the post-update graph.
        let mut g2 = g.clone();
        UpdateBatch::canonicalize(&g, &ups).apply(&mut g2);
        let (enc, table) = IncrementalEncoder::build(&g2, q, 2);
        let meta = QueryMeta::build(q, &table, enc.scheme(), false, 0);
        let pma = Gpma::from_graph(&g2, GpmaConfig::default());
        let report = run_bfs_phase(
            &pma,
            &meta,
            &table,
            &ups,
            &CostModel::default(),
            64 << 20,
            16.0,
        );
        assert_eq!(report.matches, dfs_count, "query {:?}", q.edges());
    }
}

/// Full-enumeration sanity via the façade: engine counts line up with the
/// oracle on a preset dataset after a mixed batch.
#[test]
fn facade_end_to_end_mixed_batch() {
    let d = DatasetPreset::LS.build(0.04, 46);
    let queries = gamma::datasets::generate_queries(&d.graph, QueryClass::Tree, 4, 1, 17);
    if queries.is_empty() {
        return;
    }
    let q = &queries[0];
    let mut g = d.graph.clone();
    let ups = gamma::datasets::mixed_workload(&mut g, 0.08, 9);

    let before = {
        let mut m = enumerate_matches(&g, q, None);
        m.sort_unstable();
        m
    };
    let mut g2 = g.clone();
    UpdateBatch::canonicalize(&g, &ups).apply(&mut g2);
    let after = {
        let mut m = enumerate_matches(&g2, q, None);
        m.sort_unstable();
        m
    };
    let pos = after
        .iter()
        .filter(|m| before.binary_search(m).is_err())
        .count() as u64;
    let neg = before
        .iter()
        .filter(|m| after.binary_search(m).is_err())
        .count() as u64;

    let mut engine = GammaEngine::new(g, q, Default::default());
    let r = engine.apply_batch(&ups);
    assert_eq!(r.positive_count, pos);
    assert_eq!(r.negative_count, neg);
}
