//! Crash-recovery differential harness: a durable engine killed at a
//! batch boundary and recovered from snapshot + log tail must emit a
//! per-batch match-delta stream **bit-identical** to an uninterrupted run.
//!
//! For every preset × query class of the differential matrix, the same
//! seeded workloads (insert / delete / Zipf-churn batches) are replayed
//! through
//!
//! * an uninterrupted [`GammaEngine`] (the reference stream),
//! * a [`DurableGammaEngine`] killed at a seeded-random batch boundary
//!   (the engine is dropped mid-stream, exactly what a process crash
//!   leaves on disk) and recovered from its durability directory, and
//! * the same pair for [`ShardedEngine`] at 4 shards, where recovery must
//!   bring every per-shard log to the manifest's common epoch boundary.
//!
//! Mid-stream snapshots (`snapshot_every = 2`) run in all durable
//! replays, so log rotation and snapshot/restore of live GPMA state —
//! including the sharded engine's monotone resident sets — are exercised
//! on every test, not just at creation. Replayed batches go through the
//! real batch path, so the recovery report's deltas are compared against
//! the reference stream too: recovery must *reproduce* history, not skip
//! it.

use std::path::PathBuf;

use gamma::datasets::{
    sample_deletion_workload, split_insertion_workload, DatasetPreset, QueryClass, Zipf,
};
use gamma::engine::durable::{
    DurabilityConfig, DurableGammaEngine, DurableShardedEngine, RecoveryReport,
};
use gamma::engine::{
    BatchResult, FaultPlan, GammaConfig, GammaEngine, PartitionStrategy, ShardStealing,
    ShardedConfig, ShardedEngine, StealingMode,
};
use gamma::gpu::DeviceConfig;
use gamma::graph::{DynamicGraph, Update, VMatch};
use gamma::wal::{Failpoints, IoFaultKind, SyncPolicy, WalError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One batch's delta, in comparable (sorted) form.
#[derive(Debug, PartialEq, Eq)]
struct Delta {
    positive: Vec<VMatch>,
    negative: Vec<VMatch>,
    positive_count: u64,
    negative_count: u64,
}

impl From<BatchResult> for Delta {
    fn from(r: BatchResult) -> Self {
        let mut positive = r.positive;
        let mut negative = r.negative;
        positive.sort_unstable();
        negative.sort_unstable();
        Delta {
            positive,
            negative,
            positive_count: r.positive_count,
            negative_count: r.negative_count,
        }
    }
}

fn gamma_config() -> GammaConfig {
    let mut cfg = GammaConfig {
        device: DeviceConfig::single_sm(),
        ..GammaConfig::default()
    };
    cfg.device.stealing = StealingMode::Active;
    cfg.device.min_steal_hint = 2;
    cfg
}

fn sharded_config() -> ShardedConfig {
    ShardedConfig {
        base: gamma_config(),
        num_shards: 4,
        strategy: PartitionStrategy::Hash,
        stealing: ShardStealing::Active,
        faults: None,
        query_id: 0,
    }
}

/// Same seeded workload shape as `tests/differential.rs`: two insert
/// batches carved from the generated graph, one deletion batch, one
/// Zipf-skewed churn batch.
fn build_workload(dataset: &mut DynamicGraph, seed: u64) -> Vec<Vec<Update>> {
    let mut batches = Vec::new();
    let inserts = split_insertion_workload(dataset, 0.12, seed);
    let half = inserts.len().div_ceil(2).max(1);
    for chunk in inserts.chunks(half) {
        batches.push(chunk.to_vec());
    }
    let deletes = sample_deletion_workload(dataset, 0.06, seed ^ 0xdead);
    if !deletes.is_empty() {
        batches.push(deletes);
    }
    let n = dataset.num_vertices();
    let zipf = Zipf::new(n, 0.9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut churn = Vec::new();
    while churn.len() < 24 {
        let u = zipf.sample(&mut rng) as u32;
        let v = zipf.sample(&mut rng) as u32;
        if u == v {
            continue;
        }
        if rng.random_bool(0.5) {
            churn.push(Update::insert(u, v));
        } else {
            churn.push(Update::delete(u, v));
        }
    }
    batches.push(churn);
    batches
}

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "gamma_recovery_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn durability(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        // Group commit: exercises the EveryN sync path; in-process kills
        // leave the page cache intact so no records are lost to buffering.
        sync: SyncPolicy::EveryN(3),
        snapshot_every: Some(2),
        failpoints: None,
    }
}

fn check_recovery(context: &str, report: &RecoveryReport, reference: &[Delta], kill_at: usize) {
    assert_eq!(
        report.recovered_epoch, kill_at as u64,
        "{context}: recovery must reach the kill boundary"
    );
    let first = report.snapshot_epoch as usize;
    assert_eq!(
        report.replayed.len(),
        kill_at - first,
        "{context}: replay must cover snapshot..kill"
    );
    for (i, r) in report.replayed.iter().enumerate() {
        let epoch = first + i;
        let got: Delta = r.clone().into();
        assert_eq!(
            got, reference[epoch],
            "{context}: replayed delta diverges at epoch {epoch}"
        );
    }
}

/// The harness core: reference stream, then kill + recover + continue for
/// both durable engines, comparing every batch delta bit-for-bit.
fn run_recovery(
    preset: DatasetPreset,
    class: QueryClass,
    scale: f64,
    query_size: usize,
    seed: u64,
) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));
    let queries = gamma::datasets::generate_queries(&start, class, query_size, 1, seed ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    // Reference: uninterrupted single-device run.
    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();
    // The sharded engine is delta-identical by the differential suite; its
    // reference stream is the same one.

    let kill_at = StdRng::seed_from_u64(seed ^ 0x6b31).random_range(0..=batches.len());
    let tag = format!("{}_{}_{}", preset.name(), class.name(), seed);

    // --- Single-device durable engine ---
    let dir = temp_dir(&format!("gamma_{tag}"));
    {
        let mut d = DurableGammaEngine::create(start.clone(), q, gamma_config(), durability(&dir))
            .expect("create durable engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "durable gamma diverges pre-kill at {i}");
        }
        // Kill: drop without any graceful shutdown.
    }
    let (mut d, report) = DurableGammaEngine::recover(q, gamma_config(), durability(&dir))
        .expect("recover durable engine");
    check_recovery(&format!("gamma[{tag}]"), &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable gamma diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // --- Sharded durable engine (4 shards) ---
    let dir = temp_dir(&format!("sharded_{tag}"));
    {
        let mut d =
            DurableShardedEngine::create(start.clone(), q, sharded_config(), durability(&dir))
                .expect("create durable sharded engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(
                got, reference[i],
                "durable sharded diverges pre-kill at {i}"
            );
        }
    }
    let (mut d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("recover durable sharded engine");
    check_recovery(&format!("sharded[{tag}]"), &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable sharded diverges post-recovery at {i}"
        );
    }
    drop(d);

    // Idempotent recovery: killing again right after the full run and
    // recovering a second time must land on the final epoch with nothing
    // left to replay past it.
    let (d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("second recovery");
    assert_eq!(
        report.recovered_epoch,
        batches.len() as u64,
        "second recovery must reach the end of the stream"
    );
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// ---------------------------------------------------------------------------
// The preset × class matrix, mirroring tests/differential.rs.
// ---------------------------------------------------------------------------

#[test]
fn recovery_gh_dense() {
    run_recovery(DatasetPreset::GH, QueryClass::Dense, 0.04, 4, 101);
}

#[test]
fn recovery_gh_sparse() {
    run_recovery(DatasetPreset::GH, QueryClass::Sparse, 0.04, 5, 102);
}

#[test]
fn recovery_gh_tree() {
    run_recovery(DatasetPreset::GH, QueryClass::Tree, 0.04, 5, 103);
}

#[test]
fn recovery_az_dense() {
    run_recovery(DatasetPreset::AZ, QueryClass::Dense, 0.03, 4, 104);
}

#[test]
fn recovery_az_sparse() {
    run_recovery(DatasetPreset::AZ, QueryClass::Sparse, 0.03, 5, 105);
}

#[test]
fn recovery_az_tree() {
    run_recovery(DatasetPreset::AZ, QueryClass::Tree, 0.03, 5, 106);
}

#[test]
fn recovery_st_dense() {
    run_recovery(DatasetPreset::ST, QueryClass::Dense, 0.03, 4, 106);
}

#[test]
fn recovery_st_sparse() {
    run_recovery(DatasetPreset::ST, QueryClass::Sparse, 0.02, 5, 108);
}

#[test]
fn recovery_st_tree() {
    run_recovery(DatasetPreset::ST, QueryClass::Tree, 0.02, 5, 109);
}

#[test]
fn recovery_nf_edge_labeled() {
    run_recovery(DatasetPreset::NF, QueryClass::Tree, 0.03, 4, 110);
}

// ---------------------------------------------------------------------------
// Chaos cells: runtime fail-stops and injected I/O faults composed with
// crash recovery (`gamma::engine::fault` + `gamma::wal::Failpoints`).
// ---------------------------------------------------------------------------

/// A durable sharded run that loses a shard mid-stream (phase-boundary
/// *and* mid-phase fail-stops), is then killed, and recovers — the delta
/// stream must stay bit-identical to the uninterrupted single-device
/// oracle at every stage, the repaired partition must ride the snapshot,
/// and a second recovery must be idempotent.
#[test]
fn chaos_failstop_then_crash_recovers_bit_identically() {
    let dataset = DatasetPreset::GH.build(0.04, 301);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 301u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 301 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();

    // Shard 2 dies before phase 0's first scheduling decision; shard 0
    // dies with phase 1 in flight. Failover keeps deltas exact, so the
    // pre-kill stream must already match the oracle.
    let chaos_config = || ShardedConfig {
        faults: Some(FaultPlan::new().fail_stop(0, 0, 2).fail_stop(1, 4, 0)),
        ..sharded_config()
    };
    let kill_at = (batches.len() / 2).max(1);
    let dir = temp_dir("chaos_failstop_301");
    {
        let mut d =
            DurableShardedEngine::create(start.clone(), q, chaos_config(), durability(&dir))
                .expect("create durable chaos engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "chaos run diverges pre-kill at {i}");
        }
        let stats = d.engine().shard_stats();
        assert!(
            stats.failovers > 0,
            "no failover fired — chaos cell vacuous"
        );
        assert!(
            stats.requeued_units > 0,
            "failover requeued nothing — chaos cell vacuous"
        );
        // Kill: drop without any graceful shutdown, mid-degraded-state.
    }
    // Recovery restarts the cluster all-alive over the snapshotted
    // (repaired) partition; the fault plan is spent — pass none.
    let (mut d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("recover after chaos");
    check_recovery("chaos-failstop", &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(got, reference[i], "chaos run diverges post-recovery at {i}");
    }
    drop(d);

    // Idempotent double recovery: recovering again reaches the same
    // epoch with the same state and nothing extra to replay.
    let (d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("second recovery after chaos");
    assert_eq!(
        report.recovered_epoch,
        batches.len() as u64,
        "double recovery must land on the final epoch"
    );
    assert!(report.replayed.len() <= batches.len());
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Replaying the *same* fault plan during recovery is also exact: the
/// fail-stops re-fire at the same virtual coordinates while the log
/// replays, and the delta stream still matches the oracle (failover
/// never changes deltas, so chaos during recovery is harmless too).
#[test]
fn chaos_plan_refired_during_recovery_is_still_exact() {
    let dataset = DatasetPreset::AZ.build(0.03, 302);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 302u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Sparse, 5, 1, 302 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();

    let chaos_config = || ShardedConfig {
        faults: Some(FaultPlan::new().fail_stop(0, 0, 1)),
        ..sharded_config()
    };
    let kill_at = batches.len();
    let dir = temp_dir("chaos_refire_302");
    {
        let mut d =
            DurableShardedEngine::create(start.clone(), q, chaos_config(), durability(&dir))
                .expect("create durable chaos engine");
        for (i, b) in batches.iter().enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "chaos run diverges pre-kill at {i}");
        }
    }
    let (d, report) = DurableShardedEngine::recover(q, chaos_config(), durability(&dir))
        .expect("recover with the same plan");
    check_recovery("chaos-refire", &report, &reference, kill_at);
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// An fsync failure during snapshot rotation must surface as a typed
/// error and leave the *previous* snapshot (and recovery) intact — the
/// tmp+rename protocol means a failed snapshot damages only the tmp
/// file. A transient fsync stumble must be absorbed silently.
#[test]
fn chaos_snapshot_fsync_failure_keeps_previous_snapshot() {
    let dataset = DatasetPreset::GH.build(0.04, 303);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 303u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 303 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();

    let fp = Failpoints::new();
    let dir = temp_dir("chaos_fsync_303");
    let dura = || DurabilityConfig {
        dir: dir.clone(),
        sync: SyncPolicy::EveryN(3),
        // Explicit snapshots only: the test aims faults at them.
        snapshot_every: None,
        failpoints: Some(fp.clone()),
    };
    let mut d = DurableShardedEngine::create(start.clone(), q, sharded_config(), dura())
        .expect("create durable engine");
    for (i, b) in batches.iter().enumerate() {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(got, reference[i], "diverges at {i}");
    }

    // A hard fsync failure lands on the snapshot's tmp file: the call
    // errors, the previous snapshot survives.
    fp.schedule(fp.written(), IoFaultKind::SyncFail);
    let err = d.snapshot().expect_err("fsync death must surface");
    assert!(
        matches!(err, WalError::SyncFailed(_)),
        "expected SyncFailed, got {err:?}"
    );
    assert_eq!(fp.injected(), 1, "exactly the scheduled fault fired");
    drop(d);

    // Recovery still reaches the full stream from the epoch-0 snapshot
    // plus logs — the failed rotation lost nothing.
    let (mut d, report) =
        DurableShardedEngine::recover(q, sharded_config(), dura()).expect("recover past fsync");
    assert_eq!(
        report.recovered_epoch,
        batches.len() as u64,
        "failed snapshot must not move the recovery boundary"
    );
    check_recovery("chaos-fsync", &report, &reference, batches.len());

    // A transient fsync stumble is retried on the virtual clock and the
    // rotation completes; recovery then starts from the new snapshot.
    fp.schedule(fp.written(), IoFaultKind::SyncTransient { times: 2 });
    d.snapshot().expect("transient fsync must be absorbed");
    drop(d);
    let (d, report) = DurableShardedEngine::recover(q, sharded_config(), dura())
        .expect("recover from rotated snapshot");
    assert_eq!(report.snapshot_epoch, batches.len() as u64);
    assert_eq!(report.recovered_epoch, batches.len() as u64);
    assert!(report.replayed.is_empty(), "nothing left to replay");
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// ENOSPC while logging a batch surfaces as the typed `NoSpace` error
/// before the batch executes: the caller can fail the write without the
/// engine state running ahead of the log.
#[test]
fn chaos_enospc_fails_the_batch_before_it_applies() {
    let dataset = DatasetPreset::GH.build(0.04, 304);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 304u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 304 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let fp = Failpoints::new();
    let dir = temp_dir("chaos_enospc_304");
    let dura = DurabilityConfig {
        dir: dir.clone(),
        sync: SyncPolicy::EveryRecord,
        snapshot_every: None,
        failpoints: Some(fp.clone()),
    };
    let mut d = DurableShardedEngine::create(start.clone(), q, sharded_config(), dura)
        .expect("create durable engine");
    let before = d.batches_processed();
    fp.schedule(fp.written(), IoFaultKind::Enospc);
    let err = d
        .apply_batch(&batches[0])
        .expect_err("full disk must surface");
    assert!(
        matches!(err, WalError::NoSpace(_)),
        "expected NoSpace, got {err:?}"
    );
    assert_eq!(
        d.batches_processed(),
        before,
        "a batch that could not be logged must not execute"
    );
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The single-device durable engine under the same failpoint schedule:
/// transient write faults mid-stream are absorbed by the virtual-clock
/// retry (the stream stays exact), a hard fsync death aimed at its
/// snapshot surfaces without moving the recovery boundary, and a crash
/// afterwards recovers bit-identically.
#[test]
fn chaos_gamma_transient_faults_then_crash_recovers() {
    let dataset = DatasetPreset::AZ.build(0.03, 305);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 305u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Sparse, 5, 1, 305 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();

    let fp = Failpoints::new();
    let dir = temp_dir("chaos_gamma_305");
    let dura = || DurabilityConfig {
        dir: dir.clone(),
        sync: SyncPolicy::EveryRecord,
        snapshot_every: None,
        failpoints: Some(fp.clone()),
    };
    let kill_at = (batches.len() / 2).max(1);
    {
        let mut d = DurableGammaEngine::create(start.clone(), q, gamma_config(), dura())
            .expect("create durable gamma engine");
        // Sprinkle transient faults ahead of the log head: each stalls the
        // writer for a few virtual backoff cycles, none reaches the caller.
        fp.schedule(fp.written() + 5, IoFaultKind::WriteTransient { times: 2 });
        fp.schedule(fp.written() + 900, IoFaultKind::SyncTransient { times: 1 });
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "gamma chaos diverges pre-kill at {i}");
        }
        // Both faults were absorbed by the retry loop: they count as
        // injected, yet every apply above succeeded.
        assert!(
            fp.injected() >= 1,
            "no transient fault fired — cell vacuous"
        );

        // A hard fsync death on snapshot rotation: typed error, and the
        // tmp+rename protocol keeps the recovery boundary where it was.
        fp.schedule(fp.written(), IoFaultKind::SyncFail);
        let err = d.snapshot().expect_err("fsync death must surface");
        assert!(
            matches!(err, WalError::SyncFailed(_)),
            "expected SyncFailed, got {err:?}"
        );
        // Kill: drop without graceful shutdown.
    }
    let (mut d, report) =
        DurableGammaEngine::recover(q, gamma_config(), dura()).expect("recover gamma after chaos");
    check_recovery("chaos-gamma", &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "gamma chaos diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// A *seeded* fault plan (the chaos-matrix generator, not hand-placed
/// coordinates) composed with a crash: whatever deaths the seed draws,
/// the durable stream must stay exact and recovery must complete over
/// the repaired partition.
#[test]
fn chaos_seeded_plan_survives_crash_recovery() {
    let dataset = DatasetPreset::GH.build(0.04, 306);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 306u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 306 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();

    let chaos_config = || ShardedConfig {
        faults: Some(FaultPlan::seeded(306, 4, 3)),
        ..sharded_config()
    };
    let kill_at = (batches.len() / 2).max(1);
    let dir = temp_dir("chaos_seeded_306");
    {
        let mut d =
            DurableShardedEngine::create(start.clone(), q, chaos_config(), durability(&dir))
                .expect("create durable seeded-chaos engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "seeded chaos diverges pre-kill at {i}");
        }
        // The seeded generator draws coordinates in phases 0..4 and steps
        // 0..48, all reachable here — at least one death must have fired.
        assert!(
            d.engine().shard_stats().failovers > 0,
            "seeded plan fired nothing — cell vacuous"
        );
    }
    let (mut d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("recover after seeded chaos");
    check_recovery("chaos-seeded", &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "seeded chaos diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// The greedy partition's owner table is state the graph cannot rebuild
/// implicitly (it depends on the *seed* graph, not the recovered one), so
/// it rides in the snapshot. Kill, recover, and check the table came back
/// verbatim and deltas stay bit-identical.
#[test]
fn recovery_preserves_greedy_partition() {
    let dataset = DatasetPreset::GH.build(0.04, 207);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 207u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 207 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let config = || ShardedConfig {
        base: gamma_config(),
        num_shards: 4,
        strategy: PartitionStrategy::Greedy,
        stealing: ShardStealing::Active,
        faults: None,
        query_id: 0,
    };
    let mut reference_engine = ShardedEngine::new(start.clone(), q, config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| reference_engine.apply_batch(b).into())
        .collect();
    let want_owners: Vec<u16> = reference_engine
        .partition()
        .owners()
        .expect("greedy builds an owner table")
        .to_vec();

    let kill_at = batches.len() / 2;
    let dir = temp_dir("sharded_greedy_207");
    {
        let mut d = DurableShardedEngine::create(start.clone(), q, config(), durability(&dir))
            .expect("create durable greedy engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "durable greedy diverges pre-kill at {i}");
        }
    }
    let (mut d, report) = DurableShardedEngine::recover(q, config(), durability(&dir))
        .expect("recover durable greedy engine");
    check_recovery("sharded-greedy", &report, &reference, kill_at);
    assert_eq!(
        d.engine().partition().strategy(),
        PartitionStrategy::Greedy,
        "recovered engine lost its partition strategy"
    );
    assert_eq!(
        d.engine().partition().owners().expect("owner table"),
        want_owners.as_slice(),
        "recovered owner table differs from the one the engine was built with"
    );
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable greedy diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

/// Standing-query serving tier: a [`DurableQueryRegistry`] killed at a
/// batch boundary must recover its registered query set from the snapshot
/// manifest, replay the log tail through the real grouped batch path, and
/// then continue emitting per-query delta streams bit-identical to an
/// uninterrupted registry — including a query registered mid-stream
/// (registration snapshots eagerly, so it always survives the crash).
#[test]
fn recovery_query_registry_preserves_subscriptions() {
    use gamma::engine::durable::DurableQueryRegistry;
    use gamma::engine::registry::{QueryConfig, QueryId, QueryRegistry, RegistryBatchResult};

    fn registry_deltas(r: &RegistryBatchResult) -> Vec<(QueryId, Delta)> {
        r.deltas
            .iter()
            .map(|d| {
                let mut positive = d.positive.clone();
                let mut negative = d.negative.clone();
                positive.sort_unstable();
                negative.sort_unstable();
                (
                    d.id,
                    Delta {
                        positive,
                        negative,
                        positive_count: d.positive_count,
                        negative_count: d.negative_count,
                    },
                )
            })
            .collect()
    }

    let dataset = DatasetPreset::GH.build(0.04, 101);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 0x9e37);
    let queries = gamma::datasets::generate_queries(&start, QueryClass::Sparse, 4, 2, 7901);
    assert!(queries.len() >= 2, "need two patterns");
    let late = gamma::datasets::generate_queries(&start, QueryClass::Tree, 4, 1, 7902)
        .pop()
        .unwrap_or_else(|| queries[0].clone());

    // Reference: uninterrupted in-memory registry, same op sequence.
    let mut reference = QueryRegistry::new(start.clone(), gamma_config());
    reference.register(&queries[0], QueryConfig::default());
    reference.register(&queries[1], QueryConfig::default());
    reference.register(&queries[0], QueryConfig::default()); // duplicate: shared group

    let dir = temp_dir("registry");
    let mut durable = DurableQueryRegistry::create(start.clone(), gamma_config(), durability(&dir))
        .expect("create durable registry");
    durable
        .register(&queries[0], QueryConfig::default())
        .expect("register");
    durable
        .register(&queries[1], QueryConfig::default())
        .expect("register");
    durable
        .register(&queries[0], QueryConfig::default())
        .expect("register");

    let mut expected: Vec<Vec<(QueryId, Delta)>> = Vec::new();
    let kill_at = 1 + (batches.len() / 2);
    for (i, b) in batches.iter().enumerate() {
        // Mid-stream registration right before the second batch, on both
        // sides — its delta stream starts at that batch.
        if i == 1 {
            reference.register(&late, QueryConfig::default());
            durable
                .register(&late, QueryConfig::default())
                .expect("mid-stream register");
        }
        expected.push(registry_deltas(&reference.apply_batch(b)));
        if i < kill_at {
            let got = registry_deltas(&durable.apply_batch(b).expect("logged apply"));
            assert_eq!(
                got, expected[i],
                "durable registry diverges pre-kill at {i}"
            );
        }
    }

    // Crash: drop mid-stream, recover from snapshot + log tail.
    drop(durable);
    let (mut recovered, report) =
        DurableQueryRegistry::recover(gamma_config(), durability(&dir)).expect("recover");
    assert!(report.clean, "in-process kill leaves a clean log");
    assert_eq!(report.recovered_epoch, kill_at as u64);
    assert_eq!(recovered.batches_processed(), kill_at as u64);
    // Replay window: snapshot epoch .. kill point, delta streams intact.
    for (off, r) in report.replayed.iter().enumerate() {
        let i = report.snapshot_epoch as usize + off;
        assert_eq!(
            registry_deltas(r),
            expected[i],
            "replayed batch {i} diverges from the uninterrupted stream"
        );
    }
    // The query set and its grouping survived the crash.
    assert_eq!(recovered.registry().num_queries(), reference.num_queries());
    assert_eq!(recovered.registry().group_count(), reference.group_count());

    // Post-recovery continuation stays bit-identical.
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got = registry_deltas(&recovered.apply_batch(b).expect("logged apply"));
        assert_eq!(got, expected[i], "recovered registry diverges at {i}");
    }
    drop(recovered);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
