//! Crash-recovery differential harness: a durable engine killed at a
//! batch boundary and recovered from snapshot + log tail must emit a
//! per-batch match-delta stream **bit-identical** to an uninterrupted run.
//!
//! For every preset × query class of the differential matrix, the same
//! seeded workloads (insert / delete / Zipf-churn batches) are replayed
//! through
//!
//! * an uninterrupted [`GammaEngine`] (the reference stream),
//! * a [`DurableGammaEngine`] killed at a seeded-random batch boundary
//!   (the engine is dropped mid-stream, exactly what a process crash
//!   leaves on disk) and recovered from its durability directory, and
//! * the same pair for [`ShardedEngine`] at 4 shards, where recovery must
//!   bring every per-shard log to the manifest's common epoch boundary.
//!
//! Mid-stream snapshots (`snapshot_every = 2`) run in all durable
//! replays, so log rotation and snapshot/restore of live GPMA state —
//! including the sharded engine's monotone resident sets — are exercised
//! on every test, not just at creation. Replayed batches go through the
//! real batch path, so the recovery report's deltas are compared against
//! the reference stream too: recovery must *reproduce* history, not skip
//! it.

use std::path::PathBuf;

use gamma::datasets::{
    sample_deletion_workload, split_insertion_workload, DatasetPreset, QueryClass, Zipf,
};
use gamma::engine::durable::{
    DurabilityConfig, DurableGammaEngine, DurableShardedEngine, RecoveryReport,
};
use gamma::engine::{
    BatchResult, GammaConfig, GammaEngine, PartitionStrategy, ShardStealing, ShardedConfig,
    ShardedEngine, StealingMode,
};
use gamma::gpu::DeviceConfig;
use gamma::graph::{DynamicGraph, Update, VMatch};
use gamma::wal::SyncPolicy;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One batch's delta, in comparable (sorted) form.
#[derive(Debug, PartialEq, Eq)]
struct Delta {
    positive: Vec<VMatch>,
    negative: Vec<VMatch>,
    positive_count: u64,
    negative_count: u64,
}

impl From<BatchResult> for Delta {
    fn from(r: BatchResult) -> Self {
        let mut positive = r.positive;
        let mut negative = r.negative;
        positive.sort_unstable();
        negative.sort_unstable();
        Delta {
            positive,
            negative,
            positive_count: r.positive_count,
            negative_count: r.negative_count,
        }
    }
}

fn gamma_config() -> GammaConfig {
    let mut cfg = GammaConfig {
        device: DeviceConfig::single_sm(),
        ..GammaConfig::default()
    };
    cfg.device.stealing = StealingMode::Active;
    cfg.device.min_steal_hint = 2;
    cfg
}

fn sharded_config() -> ShardedConfig {
    ShardedConfig {
        base: gamma_config(),
        num_shards: 4,
        strategy: PartitionStrategy::Hash,
        stealing: ShardStealing::Active,
    }
}

/// Same seeded workload shape as `tests/differential.rs`: two insert
/// batches carved from the generated graph, one deletion batch, one
/// Zipf-skewed churn batch.
fn build_workload(dataset: &mut DynamicGraph, seed: u64) -> Vec<Vec<Update>> {
    let mut batches = Vec::new();
    let inserts = split_insertion_workload(dataset, 0.12, seed);
    let half = inserts.len().div_ceil(2).max(1);
    for chunk in inserts.chunks(half) {
        batches.push(chunk.to_vec());
    }
    let deletes = sample_deletion_workload(dataset, 0.06, seed ^ 0xdead);
    if !deletes.is_empty() {
        batches.push(deletes);
    }
    let n = dataset.num_vertices();
    let zipf = Zipf::new(n, 0.9);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xbeef);
    let mut churn = Vec::new();
    while churn.len() < 24 {
        let u = zipf.sample(&mut rng) as u32;
        let v = zipf.sample(&mut rng) as u32;
        if u == v {
            continue;
        }
        if rng.random_bool(0.5) {
            churn.push(Update::insert(u, v));
        } else {
            churn.push(Update::delete(u, v));
        }
    }
    batches.push(churn);
    batches
}

fn temp_dir(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "gamma_recovery_{tag}_{}_{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

fn durability(dir: &std::path::Path) -> DurabilityConfig {
    DurabilityConfig {
        dir: dir.to_path_buf(),
        // Group commit: exercises the EveryN sync path; in-process kills
        // leave the page cache intact so no records are lost to buffering.
        sync: SyncPolicy::EveryN(3),
        snapshot_every: Some(2),
    }
}

fn check_recovery(context: &str, report: &RecoveryReport, reference: &[Delta], kill_at: usize) {
    assert_eq!(
        report.recovered_epoch, kill_at as u64,
        "{context}: recovery must reach the kill boundary"
    );
    let first = report.snapshot_epoch as usize;
    assert_eq!(
        report.replayed.len(),
        kill_at - first,
        "{context}: replay must cover snapshot..kill"
    );
    for (i, r) in report.replayed.iter().enumerate() {
        let epoch = first + i;
        let got: Delta = r.clone().into();
        assert_eq!(
            got, reference[epoch],
            "{context}: replayed delta diverges at epoch {epoch}"
        );
    }
}

/// The harness core: reference stream, then kill + recover + continue for
/// both durable engines, comparing every batch delta bit-for-bit.
fn run_recovery(
    preset: DatasetPreset,
    class: QueryClass,
    scale: f64,
    query_size: usize,
    seed: u64,
) {
    let dataset = preset.build(scale, seed);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, seed.wrapping_mul(0x9e37));
    let queries = gamma::datasets::generate_queries(&start, class, query_size, 1, seed ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    // Reference: uninterrupted single-device run.
    let mut engine = GammaEngine::new(start.clone(), q, gamma_config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| engine.apply_batch(b).into())
        .collect();
    // The sharded engine is delta-identical by the differential suite; its
    // reference stream is the same one.

    let kill_at = StdRng::seed_from_u64(seed ^ 0x6b31).random_range(0..=batches.len());
    let tag = format!("{}_{}_{}", preset.name(), class.name(), seed);

    // --- Single-device durable engine ---
    let dir = temp_dir(&format!("gamma_{tag}"));
    {
        let mut d = DurableGammaEngine::create(start.clone(), q, gamma_config(), durability(&dir))
            .expect("create durable engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "durable gamma diverges pre-kill at {i}");
        }
        // Kill: drop without any graceful shutdown.
    }
    let (mut d, report) = DurableGammaEngine::recover(q, gamma_config(), durability(&dir))
        .expect("recover durable engine");
    check_recovery(&format!("gamma[{tag}]"), &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable gamma diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // --- Sharded durable engine (4 shards) ---
    let dir = temp_dir(&format!("sharded_{tag}"));
    {
        let mut d =
            DurableShardedEngine::create(start.clone(), q, sharded_config(), durability(&dir))
                .expect("create durable sharded engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(
                got, reference[i],
                "durable sharded diverges pre-kill at {i}"
            );
        }
    }
    let (mut d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("recover durable sharded engine");
    check_recovery(&format!("sharded[{tag}]"), &report, &reference, kill_at);
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable sharded diverges post-recovery at {i}"
        );
    }
    drop(d);

    // Idempotent recovery: killing again right after the full run and
    // recovering a second time must land on the final epoch with nothing
    // left to replay past it.
    let (d, report) = DurableShardedEngine::recover(q, sharded_config(), durability(&dir))
        .expect("second recovery");
    assert_eq!(
        report.recovered_epoch,
        batches.len() as u64,
        "second recovery must reach the end of the stream"
    );
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}

// ---------------------------------------------------------------------------
// The preset × class matrix, mirroring tests/differential.rs.
// ---------------------------------------------------------------------------

#[test]
fn recovery_gh_dense() {
    run_recovery(DatasetPreset::GH, QueryClass::Dense, 0.04, 4, 101);
}

#[test]
fn recovery_gh_sparse() {
    run_recovery(DatasetPreset::GH, QueryClass::Sparse, 0.04, 5, 102);
}

#[test]
fn recovery_gh_tree() {
    run_recovery(DatasetPreset::GH, QueryClass::Tree, 0.04, 5, 103);
}

#[test]
fn recovery_az_dense() {
    run_recovery(DatasetPreset::AZ, QueryClass::Dense, 0.03, 4, 104);
}

#[test]
fn recovery_az_sparse() {
    run_recovery(DatasetPreset::AZ, QueryClass::Sparse, 0.03, 5, 105);
}

#[test]
fn recovery_az_tree() {
    run_recovery(DatasetPreset::AZ, QueryClass::Tree, 0.03, 5, 106);
}

#[test]
fn recovery_st_dense() {
    run_recovery(DatasetPreset::ST, QueryClass::Dense, 0.03, 4, 106);
}

#[test]
fn recovery_st_sparse() {
    run_recovery(DatasetPreset::ST, QueryClass::Sparse, 0.02, 5, 108);
}

#[test]
fn recovery_st_tree() {
    run_recovery(DatasetPreset::ST, QueryClass::Tree, 0.02, 5, 109);
}

#[test]
fn recovery_nf_edge_labeled() {
    run_recovery(DatasetPreset::NF, QueryClass::Tree, 0.03, 4, 110);
}

/// The greedy partition's owner table is state the graph cannot rebuild
/// implicitly (it depends on the *seed* graph, not the recovered one), so
/// it rides in the snapshot. Kill, recover, and check the table came back
/// verbatim and deltas stay bit-identical.
#[test]
fn recovery_preserves_greedy_partition() {
    let dataset = DatasetPreset::GH.build(0.04, 207);
    let mut start = dataset.graph.clone();
    let batches = build_workload(&mut start, 207u64.wrapping_mul(0x9e37));
    let queries =
        gamma::datasets::generate_queries(&start, QueryClass::Dense, 4, 1, 207 ^ 0x51_f1ed);
    let q = queries.first().expect("query extractable");

    let config = || ShardedConfig {
        base: gamma_config(),
        num_shards: 4,
        strategy: PartitionStrategy::Greedy,
        stealing: ShardStealing::Active,
    };
    let mut reference_engine = ShardedEngine::new(start.clone(), q, config());
    let reference: Vec<Delta> = batches
        .iter()
        .map(|b| reference_engine.apply_batch(b).into())
        .collect();
    let want_owners: Vec<u16> = reference_engine
        .partition()
        .owners()
        .expect("greedy builds an owner table")
        .to_vec();

    let kill_at = batches.len() / 2;
    let dir = temp_dir("sharded_greedy_207");
    {
        let mut d = DurableShardedEngine::create(start.clone(), q, config(), durability(&dir))
            .expect("create durable greedy engine");
        for (i, b) in batches.iter().take(kill_at).enumerate() {
            let got: Delta = d.apply_batch(b).expect("logged apply").into();
            assert_eq!(got, reference[i], "durable greedy diverges pre-kill at {i}");
        }
    }
    let (mut d, report) = DurableShardedEngine::recover(q, config(), durability(&dir))
        .expect("recover durable greedy engine");
    check_recovery("sharded-greedy", &report, &reference, kill_at);
    assert_eq!(
        d.engine().partition().strategy(),
        PartitionStrategy::Greedy,
        "recovered engine lost its partition strategy"
    );
    assert_eq!(
        d.engine().partition().owners().expect("owner table"),
        want_owners.as_slice(),
        "recovered owner table differs from the one the engine was built with"
    );
    for (i, b) in batches.iter().enumerate().skip(kill_at) {
        let got: Delta = d.apply_batch(b).expect("logged apply").into();
        assert_eq!(
            got, reference[i],
            "durable greedy diverges post-recovery at {i}"
        );
    }
    drop(d);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
