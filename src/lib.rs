//! # gamma — batch-dynamic subgraph matching on a simulated GPU
//!
//! Façade crate for the GAMMA reproduction (*GPU-Accelerated Batch-Dynamic
//! Subgraph Matching*, ICDE 2024). It re-exports the workspace crates under
//! one roof so examples and downstream users can depend on a single crate:
//!
//! * [`graph`] — labeled graphs, query graphs, updates, oracle enumeration.
//! * [`gpma`] — the packed-memory-array dynamic edge store.
//! * [`gpu`] — the deterministic SIMT execution simulator.
//! * [`engine`] — the GAMMA engine itself (preprocess → update → WBM kernel
//!   → postprocess), work stealing and coalesced search included, plus the
//!   multi-device sharded engine (hash/range partitioning, cross-shard
//!   embedding migration and inter-device work stealing) with deterministic
//!   fault injection and fail-stop shard failover (`engine::fault`).
//! * [`csm`] — CPU continuous-subgraph-matching baselines.
//! * [`datasets`] — synthetic datasets, query and update-stream generators.
//! * [`wal`] — durability primitives: write-ahead log, snapshots, the
//!   multi-shard batch-epoch manifest, and recorded benchmark traces
//!   (the crash-recoverable engine wrappers live in `engine::durable`).
//!
//! ## Quickstart
//!
//! ```
//! use gamma::prelude::*;
//!
//! // Build the data graph of the paper's Figure 1 (labels A=0, B=1, C=2).
//! let mut g = DynamicGraph::new();
//! for &l in &[0, 0, 1, 1, 1, 1, 1, 2, 2, 2] {
//!     g.add_vertex(l);
//! }
//! for &(u, v) in &[(0, 3), (0, 4), (2, 3), (2, 4), (3, 7), (2, 8),
//!                  (1, 5), (1, 6), (5, 6), (5, 9), (4, 7)] {
//!     g.insert_edge(u, v, NO_ELABEL);
//! }
//!
//! // Query: A–B, A–B, B–B triangle with a C tail.
//! let mut b = QueryGraph::builder();
//! let (u0, u1, u2, u3) = (b.vertex(0), b.vertex(1), b.vertex(1), b.vertex(2));
//! b.edge(u0, u1).edge(u0, u2).edge(u1, u2).edge(u1, u3);
//! let q = b.build();
//!
//! // Run a batch through the GAMMA engine.
//! let mut engine = GammaEngine::new(g, &q, GammaConfig::default());
//! let result = engine.apply_batch(&[Update::insert(0, 2)]);
//! assert_eq!(result.positive_count, 4); // M1..M4 from the paper's Figure 1
//! ```

pub use gamma_core as engine;
pub use gamma_csm as csm;
pub use gamma_datasets as datasets;
pub use gamma_gpma as gpma;
pub use gamma_gpu as gpu;
pub use gamma_graph as graph;
pub use gamma_wal as wal;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use gamma_core::{
        BatchResult, DurabilityConfig, DurableGammaEngine, DurableQueryRegistry,
        DurableShardedEngine, FaultPlan, GammaConfig, GammaEngine, Partition, PartitionStrategy,
        PipelinedEngine, QueryConfig, QueryId, QueryRegistry, RegistryBatchResult, ShardStealing,
        ShardedConfig, ShardedEngine, ShardedQueryRegistry, StealingMode,
    };
    pub use gamma_csm::{CsmEngine, IncrementalResult};
    pub use gamma_datasets::{DatasetPreset, QueryClass};
    pub use gamma_gpu::DeviceConfig;
    pub use gamma_graph::{
        DynamicGraph, Op, QueryGraph, Update, UpdateBatch, VMatch, VertexId, NO_ELABEL,
    };
}
