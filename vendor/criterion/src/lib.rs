//! Workspace-local micro-benchmark harness with criterion's API shape.
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of `criterion` the workspace benches use: `Criterion`,
//! benchmark groups, `Bencher::{iter, iter_batched}`, `BatchSize`, and the
//! `criterion_group!`/`criterion_main!` macros (both the simple and the
//! `name = ...; config = ...; targets = ...` forms).
//!
//! Timing model: each benchmark runs `sample_size` samples after one
//! warm-up sample; a sample times a fixed iteration count sized so a sample
//! takes roughly `TARGET_SAMPLE_NANOS`. Median / min / max per-iteration
//! times are printed in criterion-like one-line reports. No plots, no
//! statistical regression — this is a smoke-and-ballpark harness, and it
//! keeps `cargo bench` runtimes bounded.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target wall time per sample. Keeps full `cargo bench` runs fast while
/// still amortizing timer overhead over many iterations.
const TARGET_SAMPLE_NANOS: u64 = 25_000_000;

/// Re-export so benches can use `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// routine invocation regardless, so the variants only signal intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Top-level harness handle.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets samples per benchmark (criterion builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be >= 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self.sample_size, &id.into(), f);
        self
    }

    /// Called by `criterion_main!` after all groups ran.
    pub fn final_summary(&self) {}
}

/// A named collection of benchmarks sharing the criterion's configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(self.criterion.sample_size, &id, f);
        self
    }

    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(sample_size: usize, id: &str, mut f: F) {
    // Warm-up sample discovers a per-sample iteration count.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_nanos().max(1) as u64;
    let iters = (TARGET_SAMPLE_NANOS / per_iter).clamp(1, 1_000_000);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "bench {id:<48} median {} [min {}, max {}] ({sample_size} samples x {iters} iters)",
        fmt_nanos(median),
        fmt_nanos(lo),
        fmt_nanos(hi),
    );
}

fn fmt_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:8.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:8.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:8.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:8.2} s ", ns / 1_000_000_000.0)
    }
}

/// Passed to each benchmark closure; accumulates timed iterations.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` back-to-back for the sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed += start.elapsed();
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.elapsed += start.elapsed();
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut` access.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.elapsed += start.elapsed();
        }
    }
}

/// Declares a group-runner function, in either criterion form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares `main()` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0u64;
        c.bench_function("smoke/iter", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u32; 8],
                |v| v.iter().sum::<u32>(),
                BatchSize::LargeInput,
            )
        });
        group.finish();
    }

    #[test]
    fn group_macro_forms_compile() {
        fn target(c: &mut Criterion) {
            c.bench_function("t", |b| b.iter(|| 1 + 1));
        }
        criterion_group!(
            name = named;
            config = Criterion::default().sample_size(2);
            targets = target
        );
        criterion_group!(simple, target);
        named();
        simple();
    }
}
