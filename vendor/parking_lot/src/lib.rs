//! Workspace-local stand-in for `parking_lot`, backed by `std::sync`.
//!
//! The build environment has no access to crates.io. The workspace only
//! needs `Mutex`/`RwLock` with parking_lot's non-poisoning `lock()` API, so
//! this shim wraps the std primitives and swallows poisoning (a panicking
//! thread inside a critical section still leaves the data accessible, which
//! matches parking_lot semantics closely enough for the simulator).

use std::sync::{self, LockResult, TryLockError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

fn unpoison<G>(result: LockResult<G>) -> G {
    match result {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A mutex with parking_lot's panic-free `lock()` signature.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// A reader-writer lock with parking_lot's panic-free `read()`/`write()`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
