//! Workspace-local mini property-testing harness.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the `proptest` API the workspace actually
//! uses — enough to compile and run every `proptest!` block unchanged:
//!
//! * [`strategy::Strategy`] with `prop_map`, integer-range strategies,
//!   tuple strategies, [`prop::collection::vec`], [`prop::bool::ANY`] and
//!   [`strategy::Union`] (behind [`prop_oneof!`]).
//! * [`test_runner::ProptestConfig`] (`with_cases`) and
//!   [`test_runner::TestCaseError`].
//! * The [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_oneof!`] macros.
//!
//! Unlike real proptest there is no shrinking: on failure the harness
//! reports the deterministic seed (test-name hash + case index) so a
//! failing case replays exactly. Every run draws the same cases, which is
//! the right trade-off for CI on this repo.

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of test-case values. `generate` must be deterministic in
    /// the RNG stream.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f` (proptest's `prop_map`).
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy so heterogeneous strategies can share a
        /// [`Union`].
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A type-erased strategy (`dyn Strategy` behind a box).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between strategies of a common value type
    /// (the engine behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// `Just`-style constant strategy.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// Strategy for `Vec<T>` with a length drawn from a size range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize, // exclusive
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.min_len + 1 >= self.max_len {
                self.min_len
            } else {
                rng.random_range(self.min_len..self.max_len)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Accepted size specifications for [`vec`].
    pub trait IntoSizeRange {
        fn into_size_range(self) -> (usize, usize);
    }

    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> (usize, usize) {
            assert!(self.start < self.end, "empty proptest size range");
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    pub(crate) fn vec_strategy<S: Strategy>(
        element: S,
        size: impl IntoSizeRange,
    ) -> VecStrategy<S> {
        let (min_len, max_len) = size.into_size_range();
        VecStrategy {
            element,
            min_len,
            max_len,
        }
    }

    /// Uniform boolean (behind `prop::bool::ANY`).
    #[derive(Clone, Copy, Debug)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn generate(&self, rng: &mut StdRng) -> bool {
            rng.random()
        }
    }
}

/// The `prop::` namespace (`prop::collection::vec`, `prop::bool::ANY`).
pub mod prop {
    pub mod collection {
        use crate::strategy::{IntoSizeRange, Strategy, VecStrategy};

        /// Strategy for vectors with element strategy `element` and a length
        /// in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            crate::strategy::vec_strategy(element, size)
        }
    }

    pub mod bool {
        use crate::strategy::BoolAny;

        /// Uniformly random boolean.
        pub const ANY: BoolAny = BoolAny;
    }
}

pub mod test_runner {
    /// Subset of proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property observation (no shrinking in this shim).
    #[derive(Clone, Debug)]
    pub struct TestCaseError {
        pub message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError {
                message: message.into(),
            }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Stable seed derivation: FNV-1a over the test name, mixed with the
    /// case index. Keeps every property deterministic across runs while
    /// decorrelating the streams of different tests.
    pub fn case_seed(test_name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ ((case as u64) << 32 | case as u64)
    }
}

// The `proptest!` expansion needs an RNG even in crates that do not depend
// on `rand` themselves; reach it through this re-export.
#[doc(hidden)]
pub use ::rand as __rand;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the enclosing property if `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the enclosing property if the two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}: {:?} != {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Fails the enclosing property if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The property-test block macro. Each contained `#[test] fn name(arg in
/// strategy, ...) { body }` expands to a normal `#[test]` that replays
/// `cases` deterministic draws, reporting the failing case index + seed.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (config = $config:expr;) => {};
    (config = $config:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::__rand::SeedableRng as _;
            let config: $crate::test_runner::ProptestConfig = $config;
            // Strategies are built once and reused across cases.
            $crate::__proptest_bind!(strategies, ($($strategy),+));
            for case in 0..config.cases {
                let seed = $crate::test_runner::case_seed(stringify!($name), case);
                let mut rng = $crate::__rand::rngs::StdRng::seed_from_u64(seed);
                let result = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::__proptest_draw!(rng, strategies, ($($arg),+));
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!(
                        "proptest property {} failed at case {}/{} (seed {:#x}): {}",
                        stringify!($name), case, config.cases, seed, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { config = $config; $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($bind:ident, ($($strategy:expr),+)) => {
        let $bind = ($($strategy,)+);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_draw {
    ($rng:ident, $bind:ident, ($a:pat)) => {
        let $a = $crate::strategy::Strategy::generate(&$bind.0, &mut $rng);
    };
    ($rng:ident, $bind:ident, ($a:pat, $b:pat)) => {
        let $a = $crate::strategy::Strategy::generate(&$bind.0, &mut $rng);
        let $b = $crate::strategy::Strategy::generate(&$bind.1, &mut $rng);
    };
    ($rng:ident, $bind:ident, ($a:pat, $b:pat, $c:pat)) => {
        let $a = $crate::strategy::Strategy::generate(&$bind.0, &mut $rng);
        let $b = $crate::strategy::Strategy::generate(&$bind.1, &mut $rng);
        let $c = $crate::strategy::Strategy::generate(&$bind.2, &mut $rng);
    };
    ($rng:ident, $bind:ident, ($a:pat, $b:pat, $c:pat, $d:pat)) => {
        let $a = $crate::strategy::Strategy::generate(&$bind.0, &mut $rng);
        let $b = $crate::strategy::Strategy::generate(&$bind.1, &mut $rng);
        let $c = $crate::strategy::Strategy::generate(&$bind.2, &mut $rng);
        let $d = $crate::strategy::Strategy::generate(&$bind.3, &mut $rng);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 0u8..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn vec_lengths_respect_size(v in prop::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            for e in &v {
                prop_assert!(*e < 10);
            }
        }

        #[test]
        fn tuples_and_bools(pair in (0u32..5, prop::bool::ANY)) {
            prop_assert!(pair.0 < 5);
            let _: bool = pair.1;
        }

        #[test]
        fn oneof_and_map_compose(
            tagged in prop_oneof![
                (0u32..10).prop_map(|v| (false, v)),
                (10u32..20).prop_map(|v| (true, v)),
            ]
        ) {
            let (high, v) = tagged;
            prop_assert_eq!(high, v >= 10);
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failure_reports_case_and_seed() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
