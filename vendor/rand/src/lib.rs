//! Workspace-local, deterministic stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this shim provides
//! exactly the API surface the workspace uses, with `rand` 0.9 naming:
//!
//! * [`Rng`] — `random`, `random_bool`, `random_range` over `Range` /
//!   `RangeInclusive` of the primitive integer types.
//! * [`SeedableRng`] — `seed_from_u64`.
//! * [`rngs::StdRng`] — a SplitMix64 generator: tiny, fully deterministic,
//!   and statistically solid for test workloads.
//!
//! Determinism is a feature here: every dataset generator and property test
//! in the workspace seeds explicitly, so builds are reproducible bit-for-bit.

use std::ops::{Range, RangeInclusive};

/// Types that can be drawn uniformly from an `Rng` (the shim's analogue of
/// sampling from `StandardUniform`).
pub trait FromRng {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can produce a uniformly distributed sample.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain: every draw is in range.
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// Maps a uniform `u64` draw onto `0..span` (Lemire's multiply-shift
/// reduction; bias is < 2^-32 for the small spans used in this workspace).
#[inline]
fn reduce(draw: u64, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((draw as u128 * span as u128) >> 64) as u64
}

/// The user-facing random-value API (matches `rand` 0.9 method names).
pub trait Rng {
    /// Next raw 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Draws a uniform value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.random::<f64>() < p
    }

    /// Draws a uniform value from `range` (half-open or inclusive).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

/// Generators constructible from a small seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: the canonical 64-bit seeding/stream generator. One
    /// multiplication-free state step and a 3-round finalizer; passes BigCrush
    /// when used as a stream, which is far more than the tests here need.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // One warm-up step decorrelates small consecutive seeds.
            let mut rng = StdRng { state: seed };
            rng.next_u64();
            rng
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.random_range(3u32..17);
            assert!((3..17).contains(&x));
            let y = rng.random_range(0u8..=5);
            assert!(y <= 5);
            let z = rng.random_range(10usize..11);
            assert_eq!(z, 10);
        }
    }

    #[test]
    fn uniform_f64_mean() {
        let mut rng = StdRng::seed_from_u64(11);
        let mean: f64 = (0..50_000).map(|_| rng.random::<f64>()).sum::<f64>() / 50_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn bool_probability() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
    }
}
